#ifndef RNTRAJ_SERVE_RECOVERY_SERVICE_H_
#define RNTRAJ_SERVE_RECOVERY_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/model_api.h"
#include "src/serve/inference_session.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/request.h"
#include "src/serve/roadnet_cache.h"

/// \file recovery_service.h
/// The online trajectory-recovery engine: a warm, re-entrant model behind a
/// micro-batching queue and a pool of inference sessions, with shared
/// roadnet query caches. This is the subsystem that turns the offline
/// train/eval pipeline into a request-serving one — the road representation
/// is computed once at warmup instead of per request, sessions answer
/// concurrent requests against the same weights, each micro-batch runs one
/// padded cross-request encoder pass (batched_forward), and hot roadnet
/// queries (sub-graph candidates by grid cell, Dijkstra rows by source
/// segment) are shared across the whole request stream. Cached answers are
/// exact; the batched forward matches single-request inference to float
/// rounding (same segments, ratios within ~1e-6).

namespace rntraj {
namespace serve {

/// Service-level knobs.
struct RecoveryServiceConfig {
  /// Worker sessions. Forced to 1 when the model does not support
  /// concurrent Recover.
  int num_sessions = 2;
  MicroBatcherConfig batcher;

  /// Radii the cell candidate cache serves — a model's sub-graph delta and
  /// the decoder's mask/prior radii. Empty disables the cache.
  std::vector<double> cache_radii;
  RoadnetCacheConfig cache;
  /// Radii prefetched over each micro-batch's input points (subset of
  /// cache_radii; typically just the sub-graph delta).
  std::vector<double> prefetch_radii;

  /// Cap on NetworkDistance's Dijkstra row cache (serving HMM-style models
  /// must not keep an all-pairs matrix resident). 0 leaves it unbounded.
  int max_dijkstra_rows = 0;

  /// Run each micro-batch as ONE cross-request padded forward
  /// (RecoveryModel::RecoverBatch — a single GPSFormer pass per batch for
  /// RnTrajRec) instead of per-request forwards. Answers match the
  /// per-request path within float rounding (~1e-6 encoder difference from
  /// FMA contraction at different GEMM heights; same segments in practice).
  /// Disable to measure the per-sample reference path.
  bool batched_forward = true;

  /// Run BeginInference() (road representation warmup) at construction.
  bool warm_model = true;
};

/// Aggregate serving telemetry.
struct ServeStats {
  int64_t submitted = 0;
  int64_t rejected = 0;   ///< Queue-full / post-shutdown submissions.
  int64_t completed = 0;  ///< Responses delivered (ok or validation error).
  int64_t batches = 0;
  double mean_batch_size = 0.0;
  /// Percentiles over the most recent completed requests' total latency
  /// (submit -> response), milliseconds.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  RoadnetCacheStats cache;
};

/// The public serving API.
///
/// Thread-safe: Submit from any number of producer threads. The destructor
/// shuts down admissions, drains queued requests, and joins the sessions.
class RecoveryService {
 public:
  RecoveryService(RecoveryModel* model, const ModelContext& ctx,
                  const RecoveryServiceConfig& config);
  ~RecoveryService();

  RecoveryService(const RecoveryService&) = delete;
  RecoveryService& operator=(const RecoveryService&) = delete;

  /// Enqueues one request. The future resolves when a session has answered
  /// (ok=false for invalid requests, or immediately when the queue sheds
  /// load).
  std::future<RecoveryResponse> Submit(RecoveryRequest req);

  /// Answers one request synchronously on the calling thread, bypassing the
  /// queue (no batching; same model, same caches). The sequential reference
  /// path the benchmarks compare against.
  RecoveryResponse RecoverNow(RecoveryRequest req);

  /// Stops admissions, drains the queue, joins sessions (idempotent).
  void Shutdown();

  ServeStats Stats() const;

  const CellCandidateCache* cell_cache() const { return cache_.get(); }

 private:
  void WorkerLoop(InferenceSession* session);
  void RecordLatency(double total_ms);

  RecoveryModel* model_;
  RecoveryServiceConfig cfg_;
  /// True for models whose Recover is not re-entrant: sessions are clamped
  /// to one, and RecoverNow (caller thread) serializes against that session
  /// through exclusive_mu_.
  bool exclusive_model_ = false;
  std::mutex exclusive_mu_;
  NetworkDistance* netdist_ = nullptr;  ///< Set iff we capped its row cache.
  int prev_max_dijkstra_rows_ = 0;
  std::unique_ptr<CellCandidateCache> cache_;
  MicroBatcher batcher_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};

  mutable std::mutex stats_mu_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  std::vector<double> recent_latencies_ms_;  ///< Ring buffer.
  size_t latency_next_ = 0;
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_RECOVERY_SERVICE_H_
