#include "src/serve/service_policy.h"

#include <algorithm>

namespace rntraj {
namespace serve {

ServicePolicy::ServicePolicy(const ServicePolicyConfig& config,
                             size_t max_queue_depth)
    : cfg_(config), max_depth_(std::max<size_t>(1, max_queue_depth)) {
  cfg_.window = std::max(1, cfg_.window);
  cfg_.min_window_fill = std::max(1, std::min(cfg_.min_window_fill, cfg_.window));
  outcomes_.assign(static_cast<size_t>(cfg_.window), false);
}

void ServicePolicy::ObserveDepth(size_t depth) {
  if (!cfg_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  last_depth_ = depth;
  EvaluateLocked();
}

void ServicePolicy::RecordOutcome(bool deadline_missed) {
  if (!cfg_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  outcomes_[outcome_next_] = deadline_missed;
  outcome_next_ = (outcome_next_ + 1) % outcomes_.size();
  outcome_count_ = std::min(outcome_count_ + 1, outcomes_.size());
  EvaluateLocked();
}

double ServicePolicy::MissRateLocked() const {
  if (outcome_count_ == 0) return 0.0;
  size_t missed = 0;
  for (size_t i = 0; i < outcome_count_; ++i) {
    if (outcomes_[i]) ++missed;
  }
  return static_cast<double>(missed) / static_cast<double>(outcome_count_);
}

void ServicePolicy::EvaluateLocked() {
  const double depth_frac =
      static_cast<double>(last_depth_) / static_cast<double>(max_depth_);
  const double miss_rate = MissRateLocked();
  // The miss-rate signal may only *escalate* once the window has enough
  // outcomes to mean something; de-escalation reads an underfilled window
  // as calm (an idle service is a healthy service).
  const bool miss_trips = outcome_count_ >= static_cast<size_t>(cfg_.min_window_fill) &&
                          miss_rate >= cfg_.degrade_enter_miss_rate;

  PolicyState s = state();
  switch (s) {
    case PolicyState::kOk:
      if (depth_frac >= cfg_.shed_enter_depth) {
        s = PolicyState::kShedding;  // cliff arrival: jump both rungs
        ++entered_degraded_;
        ++entered_shedding_;
      } else if (depth_frac >= cfg_.degrade_enter_depth || miss_trips) {
        s = PolicyState::kDegraded;
        ++entered_degraded_;
      }
      break;
    case PolicyState::kDegraded:
      if (depth_frac >= cfg_.shed_enter_depth) {
        s = PolicyState::kShedding;
        ++entered_shedding_;
      } else if (depth_frac <= cfg_.degrade_exit_depth &&
                 miss_rate <= cfg_.degrade_exit_miss_rate) {
        s = PolicyState::kOk;
      }
      break;
    case PolicyState::kShedding:
      if (depth_frac <= cfg_.shed_exit_depth) {
        // One rung at a time on the way down: the cheap path must prove it
        // keeps up (DEGRADED) before full service resumes.
        s = PolicyState::kDegraded;
      }
      break;
  }
  state_.store(static_cast<int>(s), std::memory_order_release);
}

ServicePolicyStats ServicePolicy::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServicePolicyStats st;
  st.state = state();
  st.entered_degraded = entered_degraded_;
  st.entered_shedding = entered_shedding_;
  st.recent_miss_rate = MissRateLocked();
  return st;
}

}  // namespace serve
}  // namespace rntraj
