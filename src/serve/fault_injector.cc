#include "src/serve/fault_injector.h"

#include <chrono>
#include <thread>

namespace rntraj {
namespace serve {

namespace {

/// splitmix64 — the standard 64-bit finalising mixer; full avalanche, so
/// consecutive request ids decorrelate.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::Decide(uint64_t id, uint64_t salt,
                           double probability) const {
  if (probability <= 0.0) return false;
  const uint64_t h = Mix(Mix(cfg_.seed ^ salt) ^ id);
  // Map the top 53 bits to [0, 1): exact for probability = 1.0.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0 /* 2^53 */);
  if (u >= probability) return false;
  if (cfg_.max_faults >= 0) {
    // Spend one unit of budget; losers of the fetch_add race past the cap
    // put their unit back conceptually by simply not faulting (the counter
    // overshoot is harmless — faults_injected() reports the clamped value).
    const int64_t n = injected_.fetch_add(1, std::memory_order_relaxed);
    if (n >= cfg_.max_faults) {
      injected_.store(cfg_.max_faults, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::MaybeStall(uint64_t batch_seq) const {
  if (cfg_.stall_ms <= 0) return;
  if (!Decide(batch_seq, kStallSalt, cfg_.stall_probability)) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.stall_ms));
}

}  // namespace serve
}  // namespace rntraj
