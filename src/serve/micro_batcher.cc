#include "src/serve/micro_batcher.h"

#include <algorithm>

namespace rntraj {
namespace serve {

bool MicroBatcher::Push(QueuedRequest&& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= cfg_.max_queue_depth) return false;
    req.enqueued_at = std::chrono::steady_clock::now();
    queue_.push_back(std::move(req));
  }
  nonempty_.notify_one();
  return true;
}

std::vector<QueuedRequest> MicroBatcher::PopBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    nonempty_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
    if (queue_.empty()) return {};  // shut down and drained

    // Coalesce: the batch's deadline is anchored on the *oldest* request so
    // a request never waits more than max_batch_delay_us in a forming batch.
    const auto deadline =
        queue_.front().enqueued_at +
        std::chrono::microseconds(cfg_.max_batch_delay_us);
    while (static_cast<int>(queue_.size()) < cfg_.max_batch_size &&
           !shutdown_ && !queue_.empty()) {
      if (nonempty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    // A sibling consumer may have drained the queue while we coalesced
    // (wait_until releases the lock); an empty batch means shutdown to the
    // caller, so go back to waiting instead of returning one spuriously.
    if (queue_.empty()) continue;

    const size_t take =
        std::min(queue_.size(), static_cast<size_t>(cfg_.max_batch_size));
    std::vector<QueuedRequest> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    // Push's notify_one may all have landed on this (already awake)
    // consumer while it coalesced; hand leftover work to a sleeping sibling.
    if (!queue_.empty()) nonempty_.notify_one();
    return batch;
  }
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  nonempty_.notify_all();
}

}  // namespace serve
}  // namespace rntraj
