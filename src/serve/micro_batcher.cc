#include "src/serve/micro_batcher.h"

#include <algorithm>
#include <utility>

namespace rntraj {
namespace serve {

bool MicroBatcher::Push(QueuedRequest&& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= cfg_.max_queue_depth) return false;
    req.enqueued_at = std::chrono::steady_clock::now();
    if (req.request.deadline_ms > 0.0) {
      req.deadline_at =
          req.enqueued_at + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    req.request.deadline_ms));
    }
    queue_.push_back(std::move(req));
  }
  nonempty_.notify_one();
  return true;
}

std::vector<QueuedRequest> MicroBatcher::PopBatch() {
  // Expired requests evicted this round; resolved through the handler with
  // the lock DROPPED (set_value wakes waiting callers) before any further
  // blocking — an evicted request's immediate response must not wait out
  // another coalescing round.
  std::vector<QueuedRequest> expired;
  const auto flush_expired = [&](std::unique_lock<std::mutex>& lock) {
    if (expired.empty()) return;
    lock.unlock();
    for (QueuedRequest& q : expired) on_expired_(std::move(q));
    expired.clear();
    lock.lock();
  };

  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    flush_expired(lock);
    nonempty_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
    if (queue_.empty()) return {};  // shut down and drained

    // Deadline eviction at dequeue: a request that is already dead gets an
    // immediate deadline-exceeded response instead of a batch slot — and,
    // critically, instead of anchoring the coalescing deadline below.
    if (on_expired_) {
      const auto now = std::chrono::steady_clock::now();
      while (!queue_.empty() && queue_.front().expired(now)) {
        expired.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (queue_.empty()) continue;  // everything queued was dead
    }

    // Coalesce: the batch's deadline is anchored on the *oldest* request so
    // a request never waits more than max_batch_delay_us in a forming batch.
    const auto deadline =
        queue_.front().enqueued_at +
        std::chrono::microseconds(cfg_.max_batch_delay_us);
    while (static_cast<int>(queue_.size()) < cfg_.max_batch_size &&
           !shutdown_ && !queue_.empty()) {
      if (nonempty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    // A sibling consumer may have drained the queue while we coalesced
    // (wait_until releases the lock); an empty batch means shutdown to the
    // caller, so go back to waiting instead of returning one spuriously.
    if (queue_.empty()) continue;

    // Take up to max_batch_size live requests, evicting any that died while
    // the batch coalesced.
    std::vector<QueuedRequest> batch;
    batch.reserve(std::min(queue_.size(),
                           static_cast<size_t>(cfg_.max_batch_size)));
    const auto now = std::chrono::steady_clock::now();
    while (!queue_.empty() &&
           static_cast<int>(batch.size()) < cfg_.max_batch_size) {
      QueuedRequest q = std::move(queue_.front());
      queue_.pop_front();
      if (on_expired_ && q.expired(now)) {
        expired.push_back(std::move(q));
      } else {
        batch.push_back(std::move(q));
      }
    }
    if (batch.empty()) continue;  // the whole take was dead; flush, re-wait

    // Push's notify_one may all have landed on this (already awake)
    // consumer while it coalesced; hand leftover work to a sleeping sibling.
    if (!queue_.empty()) nonempty_.notify_one();
    lock.unlock();
    for (QueuedRequest& q : expired) on_expired_(std::move(q));
    return batch;
  }
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  nonempty_.notify_all();
}

}  // namespace serve
}  // namespace rntraj
