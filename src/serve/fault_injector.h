#ifndef RNTRAJ_SERVE_FAULT_INJECTOR_H_
#define RNTRAJ_SERVE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>

/// \file fault_injector.h
/// Deterministic fault injection for the serving subsystem — the chaos hook
/// behind serve_chaos_test. Three faults, all config-driven:
///
///   * throw  — a request's forward throws FaultInjected inside the model
///              call, exercising the session's fault isolation (only that
///              request's future may be poisoned);
///   * stall  — a session sleeps before running a batch, simulating a wedged
///              forward (deadline propagation and the degradation ladder
///              must absorb it);
///   * expire — a request's deadline is forced already-expired at dispatch.
///
/// Decisions are PER REQUEST ID (or batch sequence number) via a seeded
/// hash, not via a shared RNG stream: which requests fault is a pure
/// function of (seed, id), independent of thread interleaving — chaos runs
/// are reproducible under TSan's scheduler and across session counts.
/// `max_faults` bounds the total injections, which is how tests model "the
/// fault clears": after the budget is spent the injector goes quiet and the
/// service must recover to OK.

namespace rntraj {
namespace serve {

/// The exception injected throws. A subclass of std::runtime_error so the
/// session's generic isolation path (catch std::exception) handles it like
/// any real model failure.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected() : std::runtime_error("injected fault: forward throw") {}
};

/// Injection knobs; all probabilities in [0, 1], all default off.
struct FaultInjectorConfig {
  uint64_t seed = 0;
  double throw_probability = 0.0;   ///< Forward throws for this request.
  double stall_probability = 0.0;   ///< Session stalls before this batch.
  int stall_ms = 0;                 ///< Stall duration.
  double expire_probability = 0.0;  ///< Deadline forced expired at dispatch.
  /// Total injections (across all fault kinds) before the injector goes
  /// quiet; < 0 = unlimited. The "fault clears" knob.
  int64_t max_faults = -1;

  bool any_enabled() const {
    return throw_probability > 0.0 || stall_probability > 0.0 ||
           expire_probability > 0.0;
  }
};

/// Thread-safe (const methods + atomic budget/counters).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config) : cfg_(config) {}

  bool enabled() const { return cfg_.any_enabled(); }

  /// Throws FaultInjected when request `id` is targeted. Sessions call this
  /// inside the same try block as the model forward, so the injected throw
  /// is indistinguishable from the model itself throwing.
  void OnForward(uint64_t id) const {
    if (Decide(id, kThrowSalt, cfg_.throw_probability)) {
      throw FaultInjected();
    }
  }

  /// Sleeps stall_ms when batch `batch_seq` is targeted.
  void MaybeStall(uint64_t batch_seq) const;

  /// True when request `id`'s deadline should be treated as expired.
  bool ShouldExpire(uint64_t id) const {
    return Decide(id, kExpireSalt, cfg_.expire_probability);
  }

  /// Faults actually injected so far (tests assert the chaos really fired).
  int64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kThrowSalt = 0x7477726f;
  static constexpr uint64_t kStallSalt = 0x7374616c;
  static constexpr uint64_t kExpireSalt = 0x65787069;

  /// Deterministic per-(seed, id, salt) Bernoulli draw; consumes one unit of
  /// the fault budget when it fires.
  bool Decide(uint64_t id, uint64_t salt, double probability) const;

  FaultInjectorConfig cfg_;
  mutable std::atomic<int64_t> injected_{0};
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_FAULT_INJECTOR_H_
