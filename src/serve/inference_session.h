#ifndef RNTRAJ_SERVE_INFERENCE_SESSION_H_
#define RNTRAJ_SERVE_INFERENCE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/model_api.h"
#include "src/serve/fault_injector.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/roadnet_cache.h"
#include "src/serve/service_policy.h"

/// \file inference_session.h
/// One re-entrant model session: the per-worker execution context that turns
/// a popped micro-batch into responses. The model itself is shared across
/// sessions — its forwards are re-entrant (see
/// RecoveryModel::SupportsConcurrentRecover) — so a session owns only what
/// must be per-thread: the buffer-pool scope its worker runs under, scratch
/// conversion state, and telemetry. Sessions never touch each other; all
/// cross-request sharing happens through the roadnet caches.
///
/// Robustness contract (PR 6): a session NEVER lets a fault escape a
/// request's lane. A throwing forward poisons only that request's future
/// (error response, counted) — the worker thread survives and the batch's
/// other lanes still get correct answers. Every popped request's promise is
/// resolved exactly once, on every path.

namespace rntraj {
namespace serve {

/// Snapshot of one session's counters.
struct SessionStats {
  int64_t batches = 0;
  int64_t requests = 0;       ///< Successfully answered requests.
  int64_t faults = 0;         ///< Forwards that threw (isolated per lane).
  double busy_seconds = 0.0;  ///< Time spent inside ProcessBatch.

  /// The worker thread's buffer-pool counters (hits/misses/recycled are
  /// cumulative over the session's lifetime; cached_bytes is the pool's
  /// current resident size). Published after each batch — a session owns
  /// exactly one worker thread, so the thread-local pool stats are its own.
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  int64_t pool_recycled = 0;
  int64_t pool_cached_bytes = 0;
};

/// Execution context of one serving worker.
///
/// Hot-swap (PR 9): the session does not hold a model. The service passes
/// the current model generation into each ProcessBatch call, so a swap
/// takes effect at the next batch boundary with no session rebuild — a
/// batch always runs whole against one generation.
class InferenceSession {
 public:
  /// `cache` may be null (caching disabled). `prefetch_radii` lists the
  /// radii warmed over the batch's input points before the forwards run.
  /// `on_complete(resp, queued, total_ms)` fires after each response is
  /// built, BEFORE its promise resolves (the service classifies the
  /// outcome, records end-to-end latency and finalises the request's trace
  /// there — hence the mutable refs); may be empty. `batched_forward`
  /// routes each micro-batch through
  /// the model's RecoverBatch (one padded encoder pass per batch) instead of
  /// per-request forwards. `policy` (may be null) is consulted per batch:
  /// when the ladder is off OK, valid requests run the cheap `fallback`
  /// model (may be null = no degraded rung) instead of the full model.
  /// `injector` (may be null) is the chaos hook.
  InferenceSession(
      int id, const CellCandidateCache* cache,
      std::vector<double> prefetch_radii,
      std::function<void(RecoveryResponse&, QueuedRequest&, double)>
          on_complete,
      bool batched_forward = true, const ServicePolicy* policy = nullptr,
      RecoveryModel* fallback = nullptr,
      const FaultInjector* injector = nullptr)
      : id_(id),
        cache_(cache),
        prefetch_radii_(std::move(prefetch_radii)),
        on_complete_(std::move(on_complete)),
        batched_forward_(batched_forward),
        policy_(policy),
        fallback_(fallback),
        injector_(injector) {}

  /// Runs the batch through `model` — one batched forward when enabled,
  /// else request by request — and fulfils the promises. Invalid requests
  /// get ok=false responses and expired requests deadline-missed responses;
  /// the batch's valid remainder still runs. A throwing forward is isolated
  /// to its request (internal-error response), never the worker thread.
  /// Every response is stamped with `model_version`, the generation of
  /// `model`; the caller must keep that generation alive for the duration
  /// of the call (the service's worker loop holds its handle).
  /// Caller must hold a BufferPoolScope on the worker thread (the service's
  /// worker loop does).
  void ProcessBatch(std::vector<QueuedRequest>&& batch, RecoveryModel* model,
                    uint64_t model_version);

  int id() const { return id_; }

  /// Racy-free snapshot (counters are atomics; readable while serving).
  SessionStats Snapshot() const {
    SessionStats s;
    s.batches = batches_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.faults = faults_.load(std::memory_order_relaxed);
    s.busy_seconds = busy_seconds_.load(std::memory_order_relaxed);
    s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
    s.pool_misses = pool_misses_.load(std::memory_order_relaxed);
    s.pool_recycled = pool_recycled_.load(std::memory_order_relaxed);
    s.pool_cached_bytes = pool_cached_bytes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  int id_;
  const CellCandidateCache* cache_;
  std::vector<double> prefetch_radii_;
  std::function<void(RecoveryResponse&, QueuedRequest&, double)> on_complete_;
  bool batched_forward_;
  const ServicePolicy* policy_;
  RecoveryModel* fallback_;
  const FaultInjector* injector_;
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> faults_{0};
  std::atomic<double> busy_seconds_{0.0};
  std::atomic<int64_t> pool_hits_{0};
  std::atomic<int64_t> pool_misses_{0};
  std::atomic<int64_t> pool_recycled_{0};
  std::atomic<int64_t> pool_cached_bytes_{0};
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_INFERENCE_SESSION_H_
