#ifndef RNTRAJ_SERVE_INFERENCE_SESSION_H_
#define RNTRAJ_SERVE_INFERENCE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/model_api.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/roadnet_cache.h"

/// \file inference_session.h
/// One re-entrant model session: the per-worker execution context that turns
/// a popped micro-batch into responses. The model itself is shared across
/// sessions — its forwards are re-entrant (see
/// RecoveryModel::SupportsConcurrentRecover) — so a session owns only what
/// must be per-thread: the buffer-pool scope its worker runs under, scratch
/// conversion state, and telemetry. Sessions never touch each other; all
/// cross-request sharing happens through the roadnet caches.

namespace rntraj {
namespace serve {

/// Snapshot of one session's counters.
struct SessionStats {
  int64_t batches = 0;
  int64_t requests = 0;       ///< Successfully answered requests.
  double busy_seconds = 0.0;  ///< Time spent inside ProcessBatch.
};

/// Execution context of one serving worker.
class InferenceSession {
 public:
  /// `cache` may be null (caching disabled). `prefetch_radii` lists the
  /// radii warmed over the batch's input points before the forwards run.
  /// `on_complete(total_ms)` fires after each response is delivered (the
  /// service records end-to-end latency there); may be empty.
  /// `batched_forward` routes each micro-batch through the model's
  /// RecoverBatch (one padded encoder pass per batch plus batched decoder
  /// steps when the model supports it) instead of per-request forwards.
  InferenceSession(int id, RecoveryModel* model,
                   const CellCandidateCache* cache,
                   std::vector<double> prefetch_radii,
                   std::function<void(double)> on_complete,
                   bool batched_forward = true)
      : id_(id),
        model_(model),
        cache_(cache),
        prefetch_radii_(std::move(prefetch_radii)),
        on_complete_(std::move(on_complete)),
        batched_forward_(batched_forward) {}

  /// Runs the batch through the model — one batched forward when enabled,
  /// else request by request — and fulfils the promises. Invalid requests
  /// get ok=false responses; the batch's valid remainder still runs. Caller
  /// must hold a BufferPoolScope on the worker thread (the service's worker
  /// loop does).
  void ProcessBatch(std::vector<QueuedRequest>&& batch);

  int id() const { return id_; }

  /// Racy-free snapshot (counters are atomics; readable while serving).
  SessionStats Snapshot() const {
    SessionStats s;
    s.batches = batches_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.busy_seconds = busy_seconds_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  int id_;
  RecoveryModel* model_;
  const CellCandidateCache* cache_;
  std::vector<double> prefetch_radii_;
  std::function<void(double)> on_complete_;
  bool batched_forward_;
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<double> busy_seconds_{0.0};
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_INFERENCE_SESSION_H_
