#ifndef RNTRAJ_SERVE_REQUEST_H_
#define RNTRAJ_SERVE_REQUEST_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/traj/trajectory.h"

/// \file request.h
/// Wire-level value types of the online recovery service: one request asks
/// for the eps-interval map-matched trajectory underlying a sparse noisy GPS
/// track (the paper's online low-sample-rate recovery setting).

namespace rntraj {
namespace serve {

/// One recovery query.
struct RecoveryRequest {
  /// Sparse observed GPS points, timestamps ascending.
  RawTrajectory input;
  /// Timestamps (seconds) of the recovery grid, ascending; typically spaced
  /// at the dataset's eps_rho.
  std::vector<double> target_times;
  /// Position of each input point in the target grid (ascending, in
  /// [0, target_times.size())).
  std::vector<int> input_indices;
  /// Latency budget in milliseconds from Submit; <= 0 means no deadline.
  /// A request whose budget expires while queued is evicted at dequeue with
  /// an immediate deadline-exceeded response instead of wasting a batch
  /// slot, and a session re-checks the budget before (and after) dispatching
  /// the forward — an answer the caller has stopped waiting for is not
  /// delivered as a success.
  double deadline_ms = 0.0;
};

/// What a response represents — the service's outcome taxonomy. Shed, error
/// and deadline-missed responses must be distinguishable from successes in
/// throughput numbers (ServeStats keeps one counter per kind).
enum class ResponseKind {
  kOk = 0,           ///< Recovered by the full model.
  kValidationError,  ///< Request rejected by ValidateRequest.
  kDeadlineMissed,   ///< Deadline expired before an answer was ready.
  kShed,             ///< Refused admission (queue full / policy / shutdown).
  kInternalError,    ///< The forward threw; only this request is poisoned.
};

/// Layout version of the request/response payload encodings in
/// src/fleet/wire.cc. Bump when a field is added, removed or re-ordered —
/// the fleet frame header carries it, so a router and a worker built from
/// different layouts reject each other's frames instead of misparsing them.
inline constexpr uint32_t kRequestWireVersion = 1;

/// Bounds-checked enum decode for untrusted wire bytes: a foreign or
/// corrupted kind value is reported to the caller, never cast blindly into
/// the enum (switching over an out-of-range enum is UB).
inline bool ResponseKindFromWire(uint32_t raw, ResponseKind* out) {
  if (raw > static_cast<uint32_t>(ResponseKind::kInternalError)) return false;
  *out = static_cast<ResponseKind>(raw);
  return true;
}

/// Stable wire name of a kind — the label traces, metric exports and the
/// demo's outcome table share.
inline const char* ResponseKindName(ResponseKind k) {
  switch (k) {
    case ResponseKind::kOk: return "ok";
    case ResponseKind::kValidationError: return "validation_error";
    case ResponseKind::kDeadlineMissed: return "deadline_missed";
    case ResponseKind::kShed: return "shed";
    case ResponseKind::kInternalError: return "internal_error";
  }
  return "?";
}

/// The service's answer, with per-request serving telemetry.
struct RecoveryResponse {
  bool ok = false;
  ResponseKind kind = ResponseKind::kInternalError;
  std::string error;             ///< Set when !ok (validation failures).
  /// True when the answer came from the cheap fallback path (linear
  /// interpolation + HMM map matching) because the service was degraded;
  /// callers know they got the budget answer, not the full model's.
  bool degraded = false;
  MatchedTrajectory recovered;   ///< One point per target timestamp.
  int batch_size = 0;            ///< Size of the micro-batch it rode in.
  int session_id = -1;           ///< Session that ran the forward.
  /// Generation of the model that answered (0 = the construction-time
  /// model; each successful RecoveryService::SwapModel increments it). A
  /// batch runs whole against one generation — answers are never a blend
  /// of old and new weights, and this stamp is how the chaos suite proves
  /// it.
  uint64_t model_version = 0;
  double queue_ms = 0.0;         ///< Enqueue -> batch dispatch.
  double infer_ms = 0.0;         ///< Model forward time.
  /// The request's span tree, set iff the service's tracer sampled this
  /// request (TracerConfig::sample_rate; null for every request otherwise).
  /// Finished by the time the future resolves — safe to serialise.
  /// Process-local: the fleet wire codec (src/fleet/wire.cc) does not carry
  /// it across the process boundary — traces stay in the worker's ring.
  std::shared_ptr<const obs::RequestTrace> trace;
};

/// Structural validation; returns false and fills `*error` on the first
/// violation. The service rejects invalid requests instead of aborting — a
/// malformed query must never take a serving process down.
inline bool ValidateRequest(const RecoveryRequest& req, std::string* error) {
  const int len = static_cast<int>(req.target_times.size());
  if (req.input.empty()) {
    *error = "empty input trajectory";
    return false;
  }
  if (len == 0) {
    *error = "empty target time grid";
    return false;
  }
  // Finiteness first: NaN defeats ordering comparisons (NaN <= x is false),
  // and non-finite timestamps would violate the interpolator's partitioned-
  // range precondition downstream.
  for (double t : req.target_times) {
    if (!std::isfinite(t)) {
      *error = "target_times must be finite";
      return false;
    }
  }
  for (int j = 1; j < len; ++j) {
    if (req.target_times[j] <= req.target_times[j - 1]) {
      *error = "target_times must be strictly increasing";
      return false;
    }
  }
  for (size_t i = 0; i < req.input.points.size(); ++i) {
    const RawPoint& p = req.input.points[i];
    if (!std::isfinite(p.t) || !std::isfinite(p.pos.x) ||
        !std::isfinite(p.pos.y)) {
      *error = "input points must be finite";
      return false;
    }
    if (i > 0 && p.t <= req.input.points[i - 1].t) {
      *error = "input timestamps must be strictly increasing";
      return false;
    }
  }
  if (req.input_indices.size() != req.input.points.size()) {
    *error = "input_indices must align with input points";
    return false;
  }
  int prev = -1;
  for (int k : req.input_indices) {
    if (k <= prev || k >= len) {
      *error = "input_indices must be strictly increasing and within the grid";
      return false;
    }
    prev = k;
  }
  return true;
}

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_REQUEST_H_
