#ifndef RNTRAJ_SERVE_SERVICE_POLICY_H_
#define RNTRAJ_SERVE_SERVICE_POLICY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// \file service_policy.h
/// The graceful-degradation ladder of the recovery service: a hysteretic
/// state machine over queue depth and recent deadline-miss rate.
///
///   OK ──overload──▶ DEGRADED ──worse──▶ SHEDDING
///    ◀──recovered──           ◀──better──
///
/// OK serves every request with the full model. DEGRADED routes requests to
/// the cheap fallback recovery path (linear interpolation + HMM map
/// matching) so the queue keeps draining under load — responses carry a
/// `degraded` flag. SHEDDING is the last rung: new admissions are refused
/// outright (immediate shed response) until the backlog clears. Enter and
/// exit watermarks are separated (hysteresis) so the ladder does not flap at
/// a boundary, and the miss-rate signal is a sliding window, so recovery to
/// OK requires genuinely healthy recent traffic, not one lucky request.

namespace rntraj {
namespace serve {

/// Ladder rungs, ordered by severity.
enum class PolicyState { kOk = 0, kDegraded = 1, kShedding = 2 };

inline const char* ToString(PolicyState s) {
  switch (s) {
    case PolicyState::kOk: return "OK";
    case PolicyState::kDegraded: return "DEGRADED";
    case PolicyState::kShedding: return "SHEDDING";
  }
  return "?";
}

/// Watermarks of the ladder. Depth thresholds are fractions of the
/// admission queue's max_queue_depth; miss rates are fractions of the
/// outcome window. Every enter threshold must sit above its exit threshold
/// — that gap is the hysteresis band.
struct ServicePolicyConfig {
  /// Master switch; disabled keeps the pre-PR6 behaviour (full model
  /// always, shedding only on a full queue).
  bool enabled = false;

  /// OK -> DEGRADED when queue depth crosses this fraction (or the miss
  /// rate trips); DEGRADED -> OK only once depth falls back under the exit
  /// fraction AND the miss rate has calmed.
  double degrade_enter_depth = 0.50;
  double degrade_exit_depth = 0.20;

  /// DEGRADED -> SHEDDING when depth keeps climbing despite the cheap path;
  /// SHEDDING -> DEGRADED once depth falls back under the exit fraction.
  double shed_enter_depth = 0.85;
  double shed_exit_depth = 0.50;

  /// Deadline-miss-rate watermarks over the sliding outcome window.
  double degrade_enter_miss_rate = 0.20;
  double degrade_exit_miss_rate = 0.05;

  /// Sliding window of recent answered-request outcomes (missed deadline or
  /// not) behind the miss-rate signal.
  int window = 64;
  /// Outcomes required in the window before the miss rate may *trip* the
  /// ladder (a single early miss must not degrade an idle service). Exit is
  /// not gated: an emptying window reads as calm.
  int min_window_fill = 8;
};

/// Counters for Stats(): how often each rung was entered.
struct ServicePolicyStats {
  PolicyState state = PolicyState::kOk;
  int64_t entered_degraded = 0;
  int64_t entered_shedding = 0;
  double recent_miss_rate = 0.0;
};

/// Thread-safe ladder. Producers consult `state()` (one atomic load) on the
/// hot path; transitions are evaluated under a mutex whenever a signal
/// arrives (a depth observation or an answered-request outcome).
class ServicePolicy {
 public:
  ServicePolicy(const ServicePolicyConfig& config, size_t max_queue_depth);

  /// Feed the current admission-queue depth (called on submit and on batch
  /// completion). Re-evaluates transitions.
  void ObserveDepth(size_t depth);

  /// Feed one answered request's outcome: did it miss its deadline?
  /// (Shed and invalid requests are not outcomes — they carry no signal
  /// about serving capacity.) Re-evaluates transitions.
  void RecordOutcome(bool deadline_missed);

  /// Current rung (lock-free read).
  PolicyState state() const {
    return static_cast<PolicyState>(state_.load(std::memory_order_acquire));
  }

  bool enabled() const { return cfg_.enabled; }

  ServicePolicyStats Snapshot() const;

 private:
  /// Transition evaluation; callers hold mu_.
  void EvaluateLocked();
  double MissRateLocked() const;

  ServicePolicyConfig cfg_;
  size_t max_depth_;

  mutable std::mutex mu_;
  size_t last_depth_ = 0;
  std::vector<bool> outcomes_;  ///< Ring buffer of deadline-missed flags.
  size_t outcome_next_ = 0;
  size_t outcome_count_ = 0;  ///< Valid entries (<= cfg_.window).
  int64_t entered_degraded_ = 0;
  int64_t entered_shedding_ = 0;

  std::atomic<int> state_{static_cast<int>(PolicyState::kOk)};
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_SERVICE_POLICY_H_
