#include "src/mapmatch/hmm.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rntraj {

namespace {

constexpr double kNegInf = -1e18;

struct Candidate {
  int seg_id;
  double ratio;
  double emission_logp;
};

}  // namespace

MatchedTrajectory HmmMapMatch(const RoadNetwork& rn, const RTree& rtree,
                              NetworkDistance& nd, const RawTrajectory& traj,
                              const HmmConfig& cfg) {
  MatchedTrajectory out;
  if (traj.empty()) return out;
  const int n = traj.size();

  // Candidate generation per point.
  std::vector<std::vector<Candidate>> layers(n);
  for (int t = 0; t < n; ++t) {
    auto near = SegmentsWithinRadius(rn, rtree, traj.points[t].pos,
                                     cfg.candidate_radius);
    if (static_cast<int>(near.size()) > cfg.max_candidates) {
      near.resize(cfg.max_candidates);
    }
    layers[t].reserve(near.size());
    for (const auto& ns : near) {
      const double z = ns.projection.distance / cfg.sigma_z;
      layers[t].push_back({ns.seg_id, std::min(ns.projection.ratio, 0.999),
                           -0.5 * z * z});
    }
  }

  // Viterbi.
  std::vector<std::vector<double>> score(n);
  std::vector<std::vector<int>> parent(n);
  score[0].resize(layers[0].size());
  parent[0].assign(layers[0].size(), -1);
  for (size_t i = 0; i < layers[0].size(); ++i) {
    score[0][i] = layers[0][i].emission_logp;
  }
  for (int t = 1; t < n; ++t) {
    const double gc =
        Distance(traj.points[t - 1].pos, traj.points[t].pos);
    score[t].assign(layers[t].size(), kNegInf);
    parent[t].assign(layers[t].size(), -1);
    for (size_t j = 0; j < layers[t].size(); ++j) {
      const Candidate& cand = layers[t][j];
      for (size_t i = 0; i < layers[t - 1].size(); ++i) {
        if (score[t - 1][i] <= kNegInf / 2) continue;
        const Candidate& prev = layers[t - 1][i];
        const double route =
            nd.PointToPoint(prev.seg_id, prev.ratio, cand.seg_id, cand.ratio);
        if (route == NetworkDistance::kUnreachable) continue;
        const double trans_logp = -std::abs(route - gc) / cfg.beta;
        const double s = score[t - 1][i] + trans_logp + cand.emission_logp;
        if (s > score[t][j]) {
          score[t][j] = s;
          parent[t][j] = static_cast<int>(i);
        }
      }
    }
    // Break recovery: no candidate is reachable from the previous layer ->
    // restart the chain at this point (Newson-Krumm gap handling).
    bool all_dead = true;
    for (double s : score[t]) all_dead &= s <= kNegInf / 2;
    if (all_dead) {
      for (size_t j = 0; j < layers[t].size(); ++j) {
        score[t][j] = layers[t][j].emission_logp;
        parent[t][j] = -1;
      }
    }
  }

  // Backtrack. A restart (parent == -1 past layer 0) re-anchors at the best
  // candidate of the earlier layer.
  std::vector<int> choice(n, 0);
  {
    int best = 0;
    for (size_t j = 1; j < score[n - 1].size(); ++j) {
      if (score[n - 1][j] > score[n - 1][best]) best = static_cast<int>(j);
    }
    choice[n - 1] = best;
  }
  for (int t = n - 1; t > 0; --t) {
    int p = parent[t][choice[t]];
    if (p < 0) {
      // Chain break: pick the best-scoring candidate of layer t-1.
      p = 0;
      for (size_t j = 1; j < score[t - 1].size(); ++j) {
        if (score[t - 1][j] > score[t - 1][p]) p = static_cast<int>(j);
      }
    }
    choice[t - 1] = p;
  }

  out.points.reserve(n);
  for (int t = 0; t < n; ++t) {
    const Candidate& c = layers[t][choice[t]];
    out.points.push_back({c.seg_id, c.ratio, traj.points[t].t});
  }
  return out;
}

}  // namespace rntraj
