#ifndef RNTRAJ_MAPMATCH_HMM_H_
#define RNTRAJ_MAPMATCH_HMM_H_

#include "src/roadnet/rtree.h"
#include "src/roadnet/shortest_path.h"
#include "src/traj/trajectory.h"

/// \file hmm.h
/// Hidden-Markov-Model map matching (Newson & Krumm [14]): the classical
/// baseline the paper uses to label data and as the second stage of the
/// Linear+HMM and DHTR+HMM baselines.
///
/// Emission: candidate segments within a radius score a Gaussian on the
/// projection distance. Transition: exp(-|route - great-circle| / beta),
/// computed with directed network distances. Decoding: Viterbi with
/// break-recovery (a layer whose best score is -inf restarts the chain, as in
/// the original paper's handling of gaps).

namespace rntraj {

/// Newson-Krumm parameters.
struct HmmConfig {
  double sigma_z = 15.0;           ///< GPS noise scale (m).
  double beta = 30.0;              ///< Transition tolerance (m).
  double candidate_radius = 120.0; ///< Candidate search radius (m).
  int max_candidates = 8;          ///< Candidates per point.
};

/// Map-matches a raw trajectory; output has one matched point per input
/// point (same timestamps).
MatchedTrajectory HmmMapMatch(const RoadNetwork& rn, const RTree& rtree,
                              NetworkDistance& nd, const RawTrajectory& traj,
                              const HmmConfig& config = {});

}  // namespace rntraj

#endif  // RNTRAJ_MAPMATCH_HMM_H_
