#include "src/common/thread_pool.h"

#include <algorithm>

namespace rntraj {

namespace {
// Set while a thread is executing pool tasks; nested Run calls detect it and
// execute inline rather than waiting on a pool they are themselves part of.
thread_local bool t_in_pool_task = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::DrainJob() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t epoch = job_epoch_;
  while (job_epoch_ == epoch && job_next_ < job_size_) {
    const int t = job_next_++;
    ++job_pending_;
    lock.unlock();
    t_in_pool_task = true;
    (*job_fn_)(t);
    t_in_pool_task = false;
    lock.lock();
    if (--job_pending_ == 0 && job_next_ >= job_size_) {
      work_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_epoch = 0;
  while (true) {
    work_ready_.wait(lock, [&] {
      return shutdown_ || (job_fn_ != nullptr && job_epoch_ != seen_epoch &&
                           job_next_ < job_size_);
    });
    if (shutdown_) return;
    seen_epoch = job_epoch_;
    lock.unlock();
    DrainJob();
    lock.lock();
  }
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || num_tasks == 1 || t_in_pool_task) {
    for (int t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_size_ = num_tasks;
    job_next_ = 0;
    job_pending_ = 0;
    ++job_epoch_;
  }
  work_ready_.notify_all();
  DrainJob();  // The caller participates.
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock,
                  [&] { return job_next_ >= job_size_ && job_pending_ == 0; });
  job_fn_ = nullptr;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  grain = std::max<int64_t>(1, grain);
  ThreadPool& pool = ThreadPool::Global();
  const int64_t max_chunks =
      std::min<int64_t>(pool.num_threads(), (total + grain - 1) / grain);
  if (max_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = (total + max_chunks - 1) / max_chunks;
  pool.Run(static_cast<int>(max_chunks), [&](int t) {
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min<int64_t>(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  });
}

}  // namespace rntraj
