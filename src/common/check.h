#ifndef RNTRAJ_COMMON_CHECK_H_
#define RNTRAJ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file check.h
/// Fatal-assertion macros. The library does not use C++ exceptions (Google
/// style); contract violations are programmer errors and abort with a
/// diagnostic. Recoverable conditions are reported through return values.

namespace rntraj {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "[RNTRAJ CHECK FAILED] %s:%d: (%s) %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace rntraj

/// Aborts with a diagnostic when `cond` is false.
#define RNTRAJ_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::rntraj::internal::CheckFailed(__FILE__, __LINE__, #cond, "");         \
    }                                                                         \
  } while (0)

/// Aborts with a diagnostic and a streamed message when `cond` is false.
/// Usage: RNTRAJ_CHECK_MSG(a == b, "got " << a << " want " << b);
#define RNTRAJ_CHECK_MSG(cond, msg_stream)                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream rntraj_check_oss_;                                   \
      rntraj_check_oss_ << msg_stream;                                        \
      ::rntraj::internal::CheckFailed(__FILE__, __LINE__, #cond,              \
                                      rntraj_check_oss_.str());               \
    }                                                                         \
  } while (0)

/// Marks code after an unconditional RNTRAJ_CHECK*(false, ...) abort.
/// CheckFailed is [[noreturn]], but sanitizer instrumentation (TSan) defeats
/// GCC's noreturn path analysis and -Wreturn-type fires on functions whose
/// every exit is such an abort; this keeps those warning-clean.
#define RNTRAJ_UNREACHABLE() __builtin_unreachable()

#endif  // RNTRAJ_COMMON_CHECK_H_
