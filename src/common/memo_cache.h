#ifndef RNTRAJ_COMMON_MEMO_CACHE_H_
#define RNTRAJ_COMMON_MEMO_CACHE_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

/// \file memo_cache.h
/// Thread-safe uid-keyed memoisation shared by the model-side per-sample
/// caches (RnTrajRec point contexts, Decoder sample caches). One place owns
/// the re-entrancy invariant: negative uids mark ephemeral inputs (online
/// serving requests) that are computed into caller-provided scratch instead
/// of memoised, and memoised entries are never erased, so returned
/// references stay valid under concurrent inserts (unordered_map pointer
/// stability).

namespace rntraj {

/// Memoises Build results per non-negative uid behind a shared_mutex.
template <typename Value>
class UidMemoCache {
 public:
  /// Returns the memoised value for `uid`, building it at most once per uid
  /// (concurrent first calls may both build; one result wins). For uid < 0,
  /// builds into `*scratch` and returns it without touching the map.
  template <typename BuildFn>
  const Value& ResolveOrBuild(int64_t uid, Value* scratch,
                              BuildFn&& build) const {
    if (uid < 0) {
      *scratch = build();
      return *scratch;
    }
    {
      std::shared_lock lock(mu_);
      auto it = map_.find(uid);
      if (it != map_.end()) return it->second;
    }
    Value built = build();  // outside the lock
    std::unique_lock lock(mu_);
    return map_.try_emplace(uid, std::move(built)).first->second;
  }

 private:
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<int64_t, Value> map_;
};

}  // namespace rntraj

#endif  // RNTRAJ_COMMON_MEMO_CACHE_H_
