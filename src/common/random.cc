#include "src/common/random.h"

namespace rntraj {

Rng& GlobalRng() {
  static Rng rng(42);
  return rng;
}

void SeedGlobalRng(uint64_t seed) { GlobalRng().Seed(seed); }

}  // namespace rntraj
