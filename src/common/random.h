#ifndef RNTRAJ_COMMON_RANDOM_H_
#define RNTRAJ_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

/// \file random.h
/// Deterministic random-number utilities. Every stochastic component of the
/// library (parameter init, simulator, noise models, samplers) draws from an
/// explicitly seeded engine so that tests and benchmark tables are
/// reproducible run-to-run.

namespace rntraj {

/// A seedable random source wrapping std::mt19937_64.
///
/// Instances are cheap; components that need isolated streams own their own
/// Rng. `GlobalRng()` provides the process-wide default used by parameter
/// initialisation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Re-seeds the engine.
  void Seed(uint64_t seed) { engine_.seed(seed); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian sample.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Process-wide default engine (used by nn parameter initialisation).
Rng& GlobalRng();

/// Seeds the process-wide default engine.
void SeedGlobalRng(uint64_t seed);

}  // namespace rntraj

#endif  // RNTRAJ_COMMON_RANDOM_H_
