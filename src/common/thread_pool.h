#ifndef RNTRAJ_COMMON_THREAD_POOL_H_
#define RNTRAJ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A small reusable worker pool for data-parallel loops. Used by the GEMM
/// kernels (row-block parallelism) and by the trainer (batch-parallel
/// forward). Workers are started once and reused; a parallel region costs two
/// condition-variable round trips, not thread creation.

namespace rntraj {

/// Fixed-size pool of persistent worker threads executing indexed tasks.
///
/// `Run(num_tasks, fn)` invokes `fn(t)` for every t in [0, num_tasks) across
/// the workers and the calling thread, and returns when all calls finished.
/// One parallel region runs at a time (concurrent Run calls serialise); a
/// `Run` issued from inside a task executes inline on the caller, so nested
/// parallelism degrades gracefully instead of deadlocking.
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the caller of Run participates as the
  /// remaining thread). `num_threads <= 1` means no workers: Run is inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0) .. fn(num_tasks - 1), blocking until every call returned.
  void Run(int num_tasks, const std::function<void(int)>& fn);

  /// Process-wide pool sized to the hardware (std::thread::hardware_concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  /// Claims and runs task indices until the current job is exhausted.
  void DrainJob();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::mutex run_mu_;  ///< Serialises concurrent Run calls.

  // State of the in-flight job (guarded by mu_).
  const std::function<void(int)>* job_fn_ = nullptr;
  int job_size_ = 0;
  int job_next_ = 0;     ///< Next unclaimed task index.
  int job_pending_ = 0;  ///< Claimed-but-unfinished task count.
  uint64_t job_epoch_ = 0;
  bool shutdown_ = false;
};

/// Splits [begin, end) into contiguous chunks of at least `grain` elements
/// and runs `fn(chunk_begin, chunk_end)` on the global pool. Runs inline when
/// the range is below `grain` or the pool has a single thread.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace rntraj

#endif  // RNTRAJ_COMMON_THREAD_POOL_H_
