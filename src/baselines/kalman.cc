#include "src/baselines/kalman.h"

#include "src/common/check.h"

namespace rntraj {

namespace {

/// Symmetric 2x2 matrix (covariance of [position, velocity]).
struct Sym2 {
  double a = 0, b = 0, c = 0;  // [[a, b], [b, c]]
};

/// One axis of the constant-velocity smoother.
std::vector<double> Smooth1d(const std::vector<double>& z, double dt,
                             double q_std, double r_std) {
  const int n = static_cast<int>(z.size());
  // State transition F = [[1, dt], [0, 1]]; process noise (white acceleration)
  // Q = q^2 * [[dt^4/4, dt^3/2], [dt^3/2, dt^2]]; observation H = [1, 0].
  const double q2 = q_std * q_std;
  const Sym2 q{q2 * dt * dt * dt * dt / 4.0, q2 * dt * dt * dt / 2.0,
               q2 * dt * dt};
  const double r = r_std * r_std;

  std::vector<double> xp(n), vp(n);        // predicted mean
  std::vector<Sym2> pp(n);                 // predicted covariance
  std::vector<double> xf(n), vf(n);        // filtered mean
  std::vector<Sym2> pf(n);                 // filtered covariance

  // Init with the first observation and a diffuse prior.
  double x = z[0], v = 0.0;
  Sym2 p{r, 0.0, 100.0};
  for (int t = 0; t < n; ++t) {
    if (t > 0) {
      // Predict.
      x = x + dt * v;
      const Sym2 prev = p;
      p.a = prev.a + 2 * dt * prev.b + dt * dt * prev.c + q.a;
      p.b = prev.b + dt * prev.c + q.b;
      p.c = prev.c + q.c;
    }
    xp[t] = x;
    vp[t] = v;
    pp[t] = p;
    // Update with observation z[t].
    const double s = p.a + r;
    const double kx = p.a / s;
    const double kv = p.b / s;
    const double innov = z[t] - x;
    x += kx * innov;
    v += kv * innov;
    const Sym2 prev = p;
    p.a = (1 - kx) * prev.a;
    p.b = (1 - kx) * prev.b;
    p.c = prev.c - kv * prev.b;
    xf[t] = x;
    vf[t] = v;
    pf[t] = p;
  }

  // RTS backward smoothing.
  std::vector<double> xs(n);
  xs[n - 1] = xf[n - 1];
  double sx = xf[n - 1], sv = vf[n - 1];
  for (int t = n - 2; t >= 0; --t) {
    // Smoother gain G = P_f F^T P_p^{-1}(t+1); 2x2 inverse.
    const Sym2& pfc = pf[t];
    const Sym2& ppn = pp[t + 1];
    const double det = ppn.a * ppn.c - ppn.b * ppn.b;
    RNTRAJ_CHECK_MSG(det > 1e-12, "singular predicted covariance");
    const double ia = ppn.c / det, ib = -ppn.b / det, ic = ppn.a / det;
    // P_f F^T = [[pfc.a + dt*pfc.b, pfc.b], [pfc.b + dt*pfc.c, pfc.c]].
    const double m00 = pfc.a + dt * pfc.b, m01 = pfc.b;
    const double m10 = pfc.b + dt * pfc.c, m11 = pfc.c;
    const double g00 = m00 * ia + m01 * ib;
    const double g01 = m00 * ib + m01 * ic;
    const double g10 = m10 * ia + m11 * ib;
    const double g11 = m10 * ib + m11 * ic;
    const double dx = sx - (xf[t] + dt * vf[t]);
    const double dv = sv - vf[t];
    sx = xf[t] + g00 * dx + g01 * dv;
    sv = vf[t] + g10 * dx + g11 * dv;
    xs[t] = sx;
  }
  return xs;
}

}  // namespace

std::vector<Vec2> KalmanSmooth(const std::vector<Vec2>& observations, double dt,
                               const KalmanConfig& cfg) {
  RNTRAJ_CHECK(dt > 0.0);
  if (observations.size() <= 1) return observations;
  std::vector<double> xs(observations.size()), ys(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) {
    xs[i] = observations[i].x;
    ys[i] = observations[i].y;
  }
  const auto sx = Smooth1d(xs, dt, cfg.process_noise, cfg.observation_noise);
  const auto sy = Smooth1d(ys, dt, cfg.process_noise, cfg.observation_noise);
  std::vector<Vec2> out(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) out[i] = {sx[i], sy[i]};
  return out;
}

}  // namespace rntraj
