#include "src/baselines/gts.h"

#include "src/core/features.h"

namespace rntraj {

GtsModel::GtsModel(const BaselineConfig& config, const ModelContext& ctx,
                   int gnn_layers)
    : EncoderDecoderModel("GTS+Decoder", config, ctx),
      seg_emb_(ctx.rn->num_segments(), cfg_.dim),
      road_graph_(BuildDenseGraph(ctx.rn->num_segments(), ctx.rn->edges())),
      in_proj_(cfg_.dim + 1, cfg_.dim),
      gru_(cfg_.dim, cfg_.dim) {
  RegisterChild("seg_emb", &seg_emb_);
  RegisterChild("in_proj", &in_proj_);
  RegisterChild("gru", &gru_);
  for (int i = 0; i < gnn_layers; ++i) {
    gcn_.push_back(std::make_unique<GcnLayer>(cfg_.dim, cfg_.dim));
    RegisterChild("gcn" + std::to_string(i), gcn_.back().get());
  }
  seg_emb_.mutable_table().data() =
      GeometricSegmentTable(*ctx.rn, cfg_.dim).data();
}

void GtsModel::BeginBatch() {
  Tensor h = seg_emb_.table();
  for (auto& layer : gcn_) h = layer->Forward(h, road_graph_);
  node_repr_ = h;
}

void GtsModel::BeginInference() {
  NoGradGuard guard;
  BeginBatch();
}

EncoderDecoderModel::Encoded GtsModel::Encode(const TrajectorySample& sample) {
  RNTRAJ_CHECK_MSG(node_repr_.defined(), "GTS: BeginBatch() not called");
  // Nearest-POI lookup per GPS point.
  std::vector<int> nearest;
  nearest.reserve(sample.input.size());
  for (const auto& p : sample.input.points) {
    nearest.push_back(
        SegmentsWithinRadius(*ctx_.rn, *ctx_.rtree, p.pos, 100.0)[0].seg_id);
  }
  Tensor g = GatherRows(node_repr_, nearest);
  Tensor x = in_proj_.Forward(ConcatCols({g, InputTimeColumn(sample)}));
  Tensor outputs = gru_.Forward(x).outputs;
  return {outputs, MakeTrajH(outputs, sample)};
}

}  // namespace rntraj
