#ifndef RNTRAJ_BASELINES_GTS_H_
#define RNTRAJ_BASELINES_GTS_H_

#include <memory>
#include <vector>

#include "src/baselines/encdec_base.h"
#include "src/nn/graph.h"
#include "src/nn/rnn.h"

/// \file gts.h
/// GTS [10] + Decoder: graph-based trajectory similarity learning adapted to
/// recovery exactly as the paper does (§VI-A4): road-network "POIs" get GNN
/// embeddings over the network graph; each GPS point is represented by the
/// embedding of its nearest POI (here: nearest segment, the edge-as-node
/// equivalent), followed by a GRU.

namespace rntraj {

/// GTS baseline.
class GtsModel : public EncoderDecoderModel {
 public:
  GtsModel(const BaselineConfig& config, const ModelContext& ctx,
           int gnn_layers = 2);

  /// GNN embeddings are batch-shared like RNTrajRec's road representation.
  void BeginBatch() override;
  void BeginInference() override;

 protected:
  Encoded Encode(const TrajectorySample& sample) override;

 private:
  Embedding seg_emb_;
  std::vector<std::unique_ptr<GcnLayer>> gcn_;
  DenseGraph road_graph_;
  Linear in_proj_;
  Gru gru_;
  Tensor node_repr_;  ///< (|V|, d), refreshed per batch.
};

}  // namespace rntraj

#endif  // RNTRAJ_BASELINES_GTS_H_
