#include "src/baselines/zoo.h"

#include "src/baselines/gts.h"
#include "src/baselines/seq_encoders.h"
#include "src/baselines/two_stage.h"
#include "src/common/check.h"
#include "src/core/rntrajrec.h"

namespace rntraj {

std::vector<std::string> TableThreeMethodKeys() {
  return {"linear_hmm", "dhtr_hmm",  "t2vec", "transformer", "mtrajrec",
          "t3s",        "gts",       "neutraj", "rntrajrec"};
}

std::unique_ptr<RecoveryModel> MakeModel(const std::string& key,
                                         const ModelContext& ctx, int dim) {
  if (key == "linear_hmm") return std::make_unique<LinearHmmModel>(ctx);
  if (key == "dhtr_hmm") return std::make_unique<DhtrModel>(dim, ctx);

  BaselineConfig bcfg;
  bcfg.dim = dim;
  bcfg.heads = std::max(1, dim / 8);
  if (key == "t2vec") return std::make_unique<T2VecModel>(bcfg, ctx);
  if (key == "transformer") return std::make_unique<TransformerModel>(bcfg, ctx);
  if (key == "mtrajrec") return std::make_unique<MTrajRecModel>(bcfg, ctx);
  if (key == "t3s") return std::make_unique<T3sModel>(bcfg, ctx);
  if (key == "gts") return std::make_unique<GtsModel>(bcfg, ctx);
  if (key == "neutraj") return std::make_unique<NeuTrajModel>(bcfg, ctx);

  if (key == "rntrajrec") {
    return std::make_unique<RnTrajRec>(DefaultRnTrajRecConfig(dim), ctx);
  }
  RNTRAJ_CHECK_MSG(false, "unknown method key: " << key);
  RNTRAJ_UNREACHABLE();
}

RnTrajRecConfig DefaultRnTrajRecConfig(int dim) {
  RnTrajRecConfig cfg;
  cfg.dim = dim;
  cfg.gridgnn.heads = std::max(1, dim / 8);
  cfg.gpsformer.heads = std::max(1, dim / 8);
  cfg.gpsformer.grl.heads = std::max(1, dim / 8);
  cfg.Sync();
  return cfg;
}

}  // namespace rntraj
