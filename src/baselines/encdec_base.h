#ifndef RNTRAJ_BASELINES_ENCDEC_BASE_H_
#define RNTRAJ_BASELINES_ENCDEC_BASE_H_

#include <string>

#include "src/core/decoder.h"
#include "src/core/features.h"
#include "src/core/model_api.h"

/// \file encdec_base.h
/// Shared skeleton for the "A + Decoder" baselines (paper Remark 2): each
/// method contributes only an encoder; the multi-task constraint-mask decoder
/// of MTrajRec is shared, exactly as the paper evaluates them.

namespace rntraj {

/// Baseline hyper-parameters.
struct BaselineConfig {
  int dim = 32;
  int heads = 4;
  DecoderConfig decoder;

  void Sync() { decoder.dim = dim; }
};

/// Base class: TrainLoss/Recover in terms of a virtual `Encode`.
class EncoderDecoderModel : public Module, public RecoveryModel {
 public:
  EncoderDecoderModel(std::string name, BaselineConfig config,
                      const ModelContext& ctx)
      : cfg_([&config] {
          config.Sync();
          return config;
        }()),
        ctx_(ctx),
        decoder_(cfg_.decoder, &ctx_),
        traj_proj_(cfg_.dim + kEnvFeatureDim, cfg_.dim),
        name_(std::move(name)) {
    RegisterChild("decoder", &decoder_);
    RegisterChild("traj_proj", &traj_proj_);
  }

  std::string name() const override { return name_; }
  std::vector<Tensor> Parameters() override { return Module::Parameters(); }
  using Module::ParameterCount;
  rntraj::StateDict StateDict() override { return Module::StateDict(); }
  LoadReport LoadStateDict(const rntraj::StateDict& src) override {
    return Module::LoadStateDict(src);
  }

  Tensor TrainLoss(const TrajectorySample& sample) override {
    Encoded e = Encode(sample);
    return decoder_.TrainLoss(e.outputs, e.traj_h, sample);
  }

  MatchedTrajectory Recover(const TrajectorySample& sample) override {
    NoGradGuard guard;
    Encoded e = Encode(sample);
    return decoder_.Decode(e.outputs, e.traj_h, sample);
  }

  void SetTrainingMode(bool training) override { SetTraining(training); }
  void SetTeacherForcing(double prob) override {
    decoder_.set_teacher_forcing(prob);
  }

 protected:
  struct Encoded {
    Tensor outputs;  ///< (l, d) per-point encoder states.
    Tensor traj_h;   ///< (1, d) trajectory-level state.
  };

  virtual Encoded Encode(const TrajectorySample& sample) = 0;

  /// Standard trajectory-level head: mean pooling + environmental context.
  Tensor MakeTrajH(const Tensor& outputs, const TrajectorySample& sample) const {
    Tensor pooled = Reshape(ColMean(outputs), {1, cfg_.dim});
    return traj_proj_.Forward(ConcatCols({pooled, EnvContext(sample)}));
  }

  BaselineConfig cfg_;
  ModelContext ctx_;
  Decoder decoder_;
  Linear traj_proj_;
  std::string name_;
};

}  // namespace rntraj

#endif  // RNTRAJ_BASELINES_ENCDEC_BASE_H_
