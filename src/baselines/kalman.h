#ifndef RNTRAJ_BASELINES_KALMAN_H_
#define RNTRAJ_BASELINES_KALMAN_H_

#include <vector>

#include "src/geo/geo.h"

/// \file kalman.h
/// Constant-velocity Kalman filtering + RTS smoothing of 2-D position
/// sequences (Kalman [59]); the calibration stage of DHTR [19]. The x and y
/// axes evolve independently, so the filter runs as two decoupled 1-D
/// position/velocity filters.

namespace rntraj {

/// Kalman noise parameters.
struct KalmanConfig {
  double process_noise = 2.0;     ///< Acceleration noise std (m/s^2).
  double observation_noise = 25.0;  ///< Measurement noise std (m).
};

/// Smooths equally spaced (interval `dt`) noisy positions; returns one
/// smoothed position per input (forward filter + RTS backward pass).
std::vector<Vec2> KalmanSmooth(const std::vector<Vec2>& observations, double dt,
                               const KalmanConfig& config = {});

}  // namespace rntraj

#endif  // RNTRAJ_BASELINES_KALMAN_H_
