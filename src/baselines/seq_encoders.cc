#include "src/baselines/seq_encoders.h"

#include <algorithm>

namespace rntraj {

// ----- MTrajRec --------------------------------------------------------------

MTrajRecModel::MTrajRecModel(const BaselineConfig& config,
                             const ModelContext& ctx)
    : EncoderDecoderModel("MTrajRec", config, ctx),
      grid_emb_(ctx.grid->num_cells(), cfg_.dim),
      in_proj_(cfg_.dim + 1, cfg_.dim),
      gru_(cfg_.dim, cfg_.dim) {
  RegisterChild("grid_emb", &grid_emb_);
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*ctx.grid, cfg_.dim).data();
  RegisterChild("in_proj", &in_proj_);
  RegisterChild("gru", &gru_);
}

EncoderDecoderModel::Encoded MTrajRecModel::Encode(
    const TrajectorySample& sample) {
  Tensor g = grid_emb_.Forward(InputGridCells(ctx_, sample));
  Tensor x = in_proj_.Forward(ConcatCols({g, InputTimeColumn(sample)}));
  Tensor outputs = gru_.Forward(x).outputs;
  return {outputs, MakeTrajH(outputs, sample)};
}

// ----- Transformer -----------------------------------------------------------

TransformerModel::TransformerModel(const BaselineConfig& config,
                                   const ModelContext& ctx, int num_layers)
    : EncoderDecoderModel("Transformer+Decoder", config, ctx),
      grid_emb_(ctx.grid->num_cells(), cfg_.dim),
      in_proj_(cfg_.dim + 1, cfg_.dim) {
  RegisterChild("grid_emb", &grid_emb_);
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*ctx.grid, cfg_.dim).data();
  RegisterChild("in_proj", &in_proj_);
  for (int i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        cfg_.dim, cfg_.heads, 2 * cfg_.dim));
    RegisterChild("layer" + std::to_string(i), layers_.back().get());
  }
}

EncoderDecoderModel::Encoded TransformerModel::Encode(
    const TrajectorySample& sample) {
  Tensor g = grid_emb_.Forward(InputGridCells(ctx_, sample));
  Tensor x = in_proj_.Forward(ConcatCols({g, InputTimeColumn(sample)}));
  x = Add(x, SinusoidalPositionEncoding(x.dim(0), cfg_.dim));
  for (auto& layer : layers_) x = layer->Forward(x);
  return {x, MakeTrajH(x, sample)};
}

// ----- t2vec ------------------------------------------------------------------

T2VecModel::T2VecModel(const BaselineConfig& config, const ModelContext& ctx)
    : EncoderDecoderModel("t2vec+Decoder", config, ctx),
      grid_emb_(ctx.grid->num_cells(), cfg_.dim),
      in_proj_(cfg_.dim + 1, cfg_.dim),
      bilstm_(cfg_.dim, cfg_.dim),
      out_proj_(2 * cfg_.dim, cfg_.dim) {
  RegisterChild("grid_emb", &grid_emb_);
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*ctx.grid, cfg_.dim).data();
  RegisterChild("in_proj", &in_proj_);
  RegisterChild("bilstm", &bilstm_);
  RegisterChild("out_proj", &out_proj_);
}

EncoderDecoderModel::Encoded T2VecModel::Encode(const TrajectorySample& sample) {
  Tensor g = grid_emb_.Forward(InputGridCells(ctx_, sample));
  Tensor x = in_proj_.Forward(ConcatCols({g, InputTimeColumn(sample)}));
  Tensor outputs = out_proj_.Forward(bilstm_.Forward(x));
  return {outputs, MakeTrajH(outputs, sample)};
}

// ----- T3S --------------------------------------------------------------------

T3sModel::T3sModel(const BaselineConfig& config, const ModelContext& ctx)
    : EncoderDecoderModel("T3S+Decoder", config, ctx),
      grid_emb_(ctx.grid->num_cells(), cfg_.dim),
      in_proj_(cfg_.dim, cfg_.dim),
      attn_(cfg_.dim, cfg_.heads, 2 * cfg_.dim),
      coord_lstm_(2, cfg_.dim) {
  RegisterChild("grid_emb", &grid_emb_);
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*ctx.grid, cfg_.dim).data();
  RegisterChild("in_proj", &in_proj_);
  RegisterChild("attn", &attn_);
  RegisterChild("coord_lstm", &coord_lstm_);
}

EncoderDecoderModel::Encoded T3sModel::Encode(const TrajectorySample& sample) {
  // Structural branch: self-attention over grid embeddings (no position
  // encoding, following T3S).
  Tensor g = in_proj_.Forward(grid_emb_.Forward(InputGridCells(ctx_, sample)));
  Tensor structural = attn_.Forward(g);
  // Spatial branch: LSTM over normalised coordinates.
  Tensor coords = InputNormalizedPositions(ctx_, sample);
  Tensor spatial = coord_lstm_.Forward(coords).outputs;
  Tensor outputs = Add(structural, spatial);
  return {outputs, MakeTrajH(outputs, sample)};
}

// ----- NeuTraj ----------------------------------------------------------------

NeuTrajModel::NeuTrajModel(const BaselineConfig& config, const ModelContext& ctx)
    : EncoderDecoderModel("NeuTraj+Decoder", config, ctx),
      grid_emb_(ctx.grid->num_cells(), cfg_.dim),
      score_(cfg_.dim, 1),
      in_proj_(2 * cfg_.dim + 1, cfg_.dim),
      gru_(cfg_.dim, cfg_.dim) {
  RegisterChild("grid_emb", &grid_emb_);
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*ctx.grid, cfg_.dim).data();
  RegisterChild("score", &score_);
  RegisterChild("in_proj", &in_proj_);
  RegisterChild("gru", &gru_);
}

Tensor NeuTrajModel::NeighbourhoodFeature(const GridMapping::Cell& cell) const {
  std::vector<int> neigh;
  neigh.reserve(9);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      GridMapping::Cell c{
          std::clamp(cell.gx + dx, 0, ctx_.grid->cols() - 1),
          std::clamp(cell.gy + dy, 0, ctx_.grid->rows() - 1)};
      neigh.push_back(ctx_.grid->CellIndex(c));
    }
  }
  Tensor embs = grid_emb_.Forward(neigh);               // (9, d)
  Tensor scores = Reshape(score_.Forward(embs), {1, 9});
  return Matmul(SoftmaxRows(scores), embs);             // (1, d)
}

EncoderDecoderModel::Encoded NeuTrajModel::Encode(const TrajectorySample& sample) {
  const int l = sample.input.size();
  Tensor own = grid_emb_.Forward(InputGridCells(ctx_, sample));  // (l, d)
  std::vector<Tensor> spatial_rows;
  spatial_rows.reserve(l);
  for (const auto& p : sample.input.points) {
    spatial_rows.push_back(NeighbourhoodFeature(ctx_.grid->CellOf(p.pos)));
  }
  Tensor spatial = ConcatRows(spatial_rows);  // (l, d)
  Tensor x = in_proj_.Forward(
      ConcatCols({own, spatial, InputTimeColumn(sample)}));
  Tensor outputs = gru_.Forward(x).outputs;
  return {outputs, MakeTrajH(outputs, sample)};
}

}  // namespace rntraj
