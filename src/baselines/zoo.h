#ifndef RNTRAJ_BASELINES_ZOO_H_
#define RNTRAJ_BASELINES_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/model_api.h"
#include "src/core/rntrajrec.h"

/// \file zoo.h
/// Factory for every method of the paper's Table III, keyed by short names,
/// in the paper's row order. Used by the benchmark harnesses to sweep methods
/// uniformly.

namespace rntraj {

/// Short keys in Table III row order (Linear+HMM ... RNTrajRec).
std::vector<std::string> TableThreeMethodKeys();

/// Creates a method by key: one of "linear_hmm", "dhtr_hmm", "t2vec",
/// "transformer", "mtrajrec", "t3s", "gts", "neutraj", "rntrajrec".
/// `dim` is the hidden size shared by all learned methods.
std::unique_ptr<RecoveryModel> MakeModel(const std::string& key,
                                         const ModelContext& ctx, int dim);

/// The default RNTrajRec configuration used by `MakeModel("rntrajrec")`;
/// exposed so ablation/sweep harnesses can start from the same baseline.
RnTrajRecConfig DefaultRnTrajRecConfig(int dim);

}  // namespace rntraj

#endif  // RNTRAJ_BASELINES_ZOO_H_
