#ifndef RNTRAJ_BASELINES_SEQ_ENCODERS_H_
#define RNTRAJ_BASELINES_SEQ_ENCODERS_H_

#include <memory>
#include <vector>

#include "src/baselines/encdec_base.h"
#include "src/nn/rnn.h"
#include "src/nn/transformer.h"

/// \file seq_encoders.h
/// The grid/coordinate sequence encoders of the paper's baseline zoo
/// (§VI-A4): MTrajRec (GRU), Transformer, t2vec (BiLSTM), T3S (self-attention
/// + coordinate LSTM) and NeuTraj (GRU with grid-neighbourhood spatial
/// attention). Each pairs with the shared decoder.

namespace rntraj {

/// MTrajRec [11]: grid-cell embedding + time feature -> GRU.
class MTrajRecModel : public EncoderDecoderModel {
 public:
  MTrajRecModel(const BaselineConfig& config, const ModelContext& ctx);

 protected:
  Encoded Encode(const TrajectorySample& sample) override;

 private:
  Embedding grid_emb_;
  Linear in_proj_;
  Gru gru_;
};

/// Transformer [22] + Decoder: grid/time features through a transformer
/// encoder stack with position embeddings.
class TransformerModel : public EncoderDecoderModel {
 public:
  TransformerModel(const BaselineConfig& config, const ModelContext& ctx,
                   int num_layers = 2);

 protected:
  Encoded Encode(const TrajectorySample& sample) override;

 private:
  Embedding grid_emb_;
  Linear in_proj_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

/// t2vec [6] + Decoder: BiLSTM over grid embeddings.
class T2VecModel : public EncoderDecoderModel {
 public:
  T2VecModel(const BaselineConfig& config, const ModelContext& ctx);

 protected:
  Encoded Encode(const TrajectorySample& sample) override;

 private:
  Embedding grid_emb_;
  Linear in_proj_;
  BiLstm bilstm_;
  Linear out_proj_;  ///< (2d) -> d.
};

/// T3S [8] + Decoder: self-attention over grid structure plus an LSTM over
/// raw coordinates, summed.
class T3sModel : public EncoderDecoderModel {
 public:
  T3sModel(const BaselineConfig& config, const ModelContext& ctx);

 protected:
  Encoded Encode(const TrajectorySample& sample) override;

 private:
  Embedding grid_emb_;
  Linear in_proj_;
  TransformerEncoderLayer attn_;
  Lstm coord_lstm_;  ///< Over normalised (x, y).
};

/// NeuTraj [7] + Decoder: GRU whose input augments each grid embedding with
/// attention over the 3x3 neighbouring cells (the spatial-memory mechanism,
/// simplified to a differentiable neighbourhood attention).
class NeuTrajModel : public EncoderDecoderModel {
 public:
  NeuTrajModel(const BaselineConfig& config, const ModelContext& ctx);

 protected:
  Encoded Encode(const TrajectorySample& sample) override;

 private:
  /// (1, d) spatial attention over the neighbourhood of one cell.
  Tensor NeighbourhoodFeature(const GridMapping::Cell& cell) const;

  Embedding grid_emb_;
  Linear score_;     ///< d -> 1 neighbour scoring.
  Linear in_proj_;   ///< (2d + 1) -> d.
  Gru gru_;
};

}  // namespace rntraj

#endif  // RNTRAJ_BASELINES_SEQ_ENCODERS_H_
