#ifndef RNTRAJ_BASELINES_TWO_STAGE_H_
#define RNTRAJ_BASELINES_TWO_STAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/kalman.h"
#include "src/core/features.h"
#include "src/core/model_api.h"
#include "src/mapmatch/hmm.h"
#include "src/nn/attention.h"
#include "src/nn/linear.h"
#include "src/nn/rnn.h"

/// \file two_stage.h
/// The two-stage baselines: Linear+HMM (interpolation then map matching,
/// Hoteit [18] + Newson-Krumm [14]) and DHTR+HMM (a seq2seq coordinate
/// regressor with Kalman-filter calibration [19], then map matching).

namespace rntraj {

/// Linear interpolation + HMM (no learning).
class LinearHmmModel : public RecoveryModel {
 public:
  LinearHmmModel(const ModelContext& ctx, const HmmConfig& hmm = {})
      : ctx_(ctx), hmm_(hmm) {}

  std::string name() const override { return "Linear+HMM"; }
  bool IsLearned() const override { return false; }
  std::vector<Tensor> Parameters() override { return {}; }
  Tensor TrainLoss(const TrajectorySample&) override { return Tensor(); }
  MatchedTrajectory Recover(const TrajectorySample& sample) override;

 private:
  ModelContext ctx_;
  HmmConfig hmm_;
};

/// DHTR + HMM: GRU seq2seq with attention predicts the high-sample coordinate
/// sequence (trained with MSE in normalised coordinates), a Kalman RTS
/// smoother calibrates it, and HMM recovers the map-matched trajectory.
class DhtrModel : public Module, public RecoveryModel {
 public:
  DhtrModel(int dim, const ModelContext& ctx);

  std::string name() const override { return "DHTR+HMM"; }
  std::vector<Tensor> Parameters() override { return Module::Parameters(); }
  using Module::ParameterCount;
  rntraj::StateDict StateDict() override { return Module::StateDict(); }
  LoadReport LoadStateDict(const rntraj::StateDict& src) override {
    return Module::LoadStateDict(src);
  }
  Tensor TrainLoss(const TrajectorySample& sample) override;
  MatchedTrajectory Recover(const TrajectorySample& sample) override;
  void SetTrainingMode(bool training) override { SetTraining(training); }

 private:
  /// Encoder outputs over the low-sample input.
  Tensor EncodeInput(const TrajectorySample& sample) const;

  /// Predicted normalised coordinates, teacher-forced when `truth` set.
  Tensor PredictCoords(const Tensor& enc, const TrajectorySample& sample,
                       bool teacher_forcing) const;

  /// Maps normalised (x, y) back to the planar frame.
  Vec2 Unnormalise(float nx, float ny) const;

  int dim_;
  ModelContext ctx_;
  Embedding grid_emb_;
  Linear in_proj_;
  Gru encoder_;
  AdditiveAttention attn_;
  GruCell dec_cell_;
  Linear coord_head_;
  KalmanConfig kalman_;
  HmmConfig hmm_;
};

}  // namespace rntraj

#endif  // RNTRAJ_BASELINES_TWO_STAGE_H_
