#include "src/baselines/two_stage.h"

#include <algorithm>

#include "src/traj/resample.h"

namespace rntraj {

// ----- Linear + HMM -----------------------------------------------------------

MatchedTrajectory LinearHmmModel::Recover(const TrajectorySample& sample) {
  std::vector<double> times;
  times.reserve(sample.truth.size());
  for (const auto& p : sample.truth.points) times.push_back(p.t);
  RawTrajectory dense = LinearInterpolate(sample.input, times);
  return HmmMapMatch(*ctx_.rn, *ctx_.rtree, *ctx_.netdist, dense, hmm_);
}

// ----- DHTR + HMM ---------------------------------------------------------------

DhtrModel::DhtrModel(int dim, const ModelContext& ctx)
    : dim_(dim),
      ctx_(ctx),
      grid_emb_(ctx.grid->num_cells(), dim),
      in_proj_(dim + 1, dim),
      encoder_(dim, dim),
      attn_(dim),
      dec_cell_(dim + 2, dim),
      coord_head_(dim, 2) {
  RegisterChild("grid_emb", &grid_emb_);
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*ctx.grid, dim).data();
  RegisterChild("in_proj", &in_proj_);
  RegisterChild("encoder", &encoder_);
  RegisterChild("attn", &attn_);
  RegisterChild("dec_cell", &dec_cell_);
  RegisterChild("coord_head", &coord_head_);
}

Tensor DhtrModel::EncodeInput(const TrajectorySample& sample) const {
  Tensor g = grid_emb_.Forward(InputGridCells(ctx_, sample));
  Tensor x = in_proj_.Forward(ConcatCols({g, InputTimeColumn(sample)}));
  return encoder_.Forward(x).outputs;
}

Vec2 DhtrModel::Unnormalise(float nx, float ny) const {
  const BBox& b = ctx_.rn->bounds();
  return {b.min_x + nx * b.width(), b.min_y + ny * b.height()};
}

Tensor DhtrModel::PredictCoords(const Tensor& enc,
                                const TrajectorySample& sample,
                                bool teacher_forcing) const {
  const BBox& b = ctx_.rn->bounds();
  const int len = sample.truth.size();
  const auto keys = attn_.Precompute(enc);
  Tensor h = Reshape(ColMean(enc), {1, dim_});
  Tensor prev = Tensor::Full({1, 2}, 0.5f);
  std::vector<Tensor> rows;
  rows.reserve(len);
  for (int j = 0; j < len; ++j) {
    Tensor a = attn_.Forward(h, keys).context;
    h = dec_cell_.Forward(ConcatCols({prev, a}), h);
    Tensor xy = Sigmoid(coord_head_.Forward(h));  // (1, 2) in [0,1]
    rows.push_back(xy);
    if (teacher_forcing) {
      const Vec2 t = ctx_.rn->PointAt(sample.truth.points[j].seg_id,
                                      sample.truth.points[j].ratio);
      prev = Tensor::FromVector(
          {1, 2},
          {static_cast<float>((t.x - b.min_x) / std::max(1.0, b.width())),
           static_cast<float>((t.y - b.min_y) / std::max(1.0, b.height()))});
    } else {
      prev = xy;
    }
  }
  return ConcatRows(rows);  // (len, 2)
}

Tensor DhtrModel::TrainLoss(const TrajectorySample& sample) {
  const BBox& b = ctx_.rn->bounds();
  Tensor enc = EncodeInput(sample);
  Tensor pred = PredictCoords(enc, sample, /*teacher_forcing=*/true);
  const int len = sample.truth.size();
  std::vector<float> target(static_cast<size_t>(len) * 2);
  for (int j = 0; j < len; ++j) {
    const Vec2 t = ctx_.rn->PointAt(sample.truth.points[j].seg_id,
                                    sample.truth.points[j].ratio);
    target[2 * j] = static_cast<float>((t.x - b.min_x) / std::max(1.0, b.width()));
    target[2 * j + 1] =
        static_cast<float>((t.y - b.min_y) / std::max(1.0, b.height()));
  }
  // Scaled MSE: normalised coordinates make losses tiny, so scale up for a
  // usable gradient signal.
  return MulScalar(
      MeanAll(Square(Sub(pred, Tensor::FromVector({len, 2}, target)))), 100.0f);
}

MatchedTrajectory DhtrModel::Recover(const TrajectorySample& sample) {
  NoGradGuard guard;
  Tensor enc = EncodeInput(sample);
  Tensor pred = PredictCoords(enc, sample, /*teacher_forcing=*/false);
  // Stage 2a: Kalman RTS calibration of the coordinate sequence.
  std::vector<Vec2> coords;
  coords.reserve(pred.dim(0));
  for (int j = 0; j < pred.dim(0); ++j) {
    coords.push_back(Unnormalise(pred.at(j, 0), pred.at(j, 1)));
  }
  coords = KalmanSmooth(coords, ctx_.eps_rho, kalman_);
  // Stage 2b: HMM map matching.
  RawTrajectory dense;
  dense.points.reserve(coords.size());
  for (size_t j = 0; j < coords.size(); ++j) {
    dense.points.push_back({coords[j], sample.truth.points[j].t});
  }
  return HmmMapMatch(*ctx_.rn, *ctx_.rtree, *ctx_.netdist, dense, hmm_);
}

}  // namespace rntraj
