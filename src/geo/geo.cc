#include "src/geo/geo.h"

#include <algorithm>
#include <limits>

namespace rntraj {

double HaversineDistance(const LatLng& a, const LatLng& b) {
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

PointProjection ProjectOntoSegment(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len2 = Dot(ab, ab);
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  }
  const Vec2 closest = a + ab * t;
  return {Distance(p, closest), t, closest};
}

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  RNTRAJ_CHECK_MSG(points_.size() >= 2, "polyline needs >= 2 points");
  cum_.resize(points_.size(), 0.0);
  bounds_ = BBox::FromPoint(points_[0]);
  for (size_t i = 1; i < points_.size(); ++i) {
    cum_[i] = cum_[i - 1] + Distance(points_[i - 1], points_[i]);
    bounds_.ExpandToInclude(points_[i]);
  }
  length_ = cum_.back();
  RNTRAJ_CHECK_MSG(length_ > 0.0, "degenerate zero-length polyline");
}

Vec2 Polyline::PointAt(double ratio) const {
  const double target = std::clamp(ratio, 0.0, 1.0) * length_;
  // Find the piece containing the target arc length.
  auto it = std::lower_bound(cum_.begin(), cum_.end(), target);
  size_t i = static_cast<size_t>(std::distance(cum_.begin(), it));
  if (i == 0) return points_[0];
  if (i >= points_.size()) return points_.back();
  const double seg_len = cum_[i] - cum_[i - 1];
  const double t = seg_len > 0.0 ? (target - cum_[i - 1]) / seg_len : 0.0;
  return points_[i - 1] + (points_[i] - points_[i - 1]) * t;
}

PointProjection Polyline::Project(const Vec2& p) const {
  PointProjection best;
  best.distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    PointProjection proj = ProjectOntoSegment(p, points_[i], points_[i + 1]);
    if (proj.distance < best.distance) {
      const double piece_len = cum_[i + 1] - cum_[i];
      best = proj;
      best.ratio = (cum_[i] + proj.ratio * piece_len) / length_;
    }
  }
  return best;
}

}  // namespace rntraj
