#ifndef RNTRAJ_GEO_GEO_H_
#define RNTRAJ_GEO_GEO_H_

#include <cmath>
#include <vector>

#include "src/common/check.h"

/// \file geo.h
/// Planar and spherical geometry primitives.
///
/// The pipeline works in a local planar frame in meters (`Vec2`): synthetic
/// cities span a few kilometres, where an equirectangular projection of
/// WGS-84 coordinates is accurate to centimetres. `LatLng` + `Projection`
/// provide the boundary conversion used when exporting/importing GPS-like
/// coordinates (see DESIGN.md substitutions).

namespace rntraj {

/// Planar point/vector in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
};

inline double Dot(const Vec2& a, const Vec2& b) { return a.x * b.x + a.y * b.y; }
inline double Norm(const Vec2& a) { return std::sqrt(Dot(a, a)); }
inline double Distance(const Vec2& a, const Vec2& b) { return Norm(a - b); }

/// WGS-84 coordinate.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

/// Mean Earth radius (meters).
inline constexpr double kEarthRadiusM = 6371008.8;

/// Great-circle distance between two WGS-84 points (haversine formula).
double HaversineDistance(const LatLng& a, const LatLng& b);

/// Equirectangular projection anchored at a reference point: accurate for
/// city-scale extents, exact inverse of `Unproject`.
class Projection {
 public:
  explicit Projection(const LatLng& anchor) : anchor_(anchor) {
    cos_lat_ = std::cos(anchor.lat * kDegToRad);
  }

  Vec2 Project(const LatLng& p) const {
    return {(p.lng - anchor_.lng) * kDegToRad * kEarthRadiusM * cos_lat_,
            (p.lat - anchor_.lat) * kDegToRad * kEarthRadiusM};
  }

  LatLng Unproject(const Vec2& p) const {
    return {anchor_.lat + p.y / kEarthRadiusM / kDegToRad,
            anchor_.lng + p.x / (kEarthRadiusM * cos_lat_) / kDegToRad};
  }

 private:
  static constexpr double kDegToRad = M_PI / 180.0;
  LatLng anchor_;
  double cos_lat_;
};

/// Axis-aligned bounding box.
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  bool Contains(const Vec2& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const BBox& o) const {
    return !(o.min_x > max_x || o.max_x < min_x || o.min_y > max_y ||
             o.max_y < min_y);
  }

  void ExpandToInclude(const Vec2& p) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }

  /// Grown by `r` on every side.
  BBox Buffered(double r) const {
    return {min_x - r, min_y - r, max_x + r, max_y + r};
  }

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }

  static BBox FromPoint(const Vec2& p) { return {p.x, p.y, p.x, p.y}; }
};

/// Result of projecting a point onto a segment or polyline.
struct PointProjection {
  double distance = 0.0;  ///< Planar distance point -> closest point.
  double ratio = 0.0;     ///< Position of the closest point in [0,1].
  Vec2 closest;           ///< The closest point itself.
};

/// Projects `p` onto segment a-b.
PointProjection ProjectOntoSegment(const Vec2& p, const Vec2& a, const Vec2& b);

/// A directed piecewise-linear curve in the meters plane.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  double length() const { return length_; }
  BBox bounds() const { return bounds_; }

  /// The point at `ratio` in [0,1] along the arc length.
  Vec2 PointAt(double ratio) const;

  /// Projects `p` onto the polyline (closest point over all pieces); the
  /// returned ratio is measured along the arc length.
  PointProjection Project(const Vec2& p) const;

 private:
  std::vector<Vec2> points_;
  std::vector<double> cum_;  ///< Cumulative arc length per vertex.
  double length_ = 0.0;
  BBox bounds_;
};

}  // namespace rntraj

#endif  // RNTRAJ_GEO_GEO_H_
