#include "src/roadnet/grid.h"

#include <algorithm>
#include <cmath>

namespace rntraj {

GridMapping::GridMapping(const BBox& bounds, double cell_size)
    : bounds_(bounds.Buffered(cell_size * 0.5)), cell_size_(cell_size) {
  RNTRAJ_CHECK_MSG(cell_size > 0.0, "cell_size must be positive");
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_size_)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_size_)));
}

GridMapping::Cell GridMapping::CellOf(const Vec2& p) const {
  int gx = static_cast<int>(std::floor((p.x - bounds_.min_x) / cell_size_));
  int gy = static_cast<int>(std::floor((p.y - bounds_.min_y) / cell_size_));
  gx = std::clamp(gx, 0, cols_ - 1);
  gy = std::clamp(gy, 0, rows_ - 1);
  return {gx, gy};
}

Vec2 GridMapping::CellCenter(const Cell& c) const {
  return {bounds_.min_x + (c.gx + 0.5) * cell_size_,
          bounds_.min_y + (c.gy + 0.5) * cell_size_};
}

std::vector<int> GridMapping::GridSequence(const Polyline& line) const {
  // Sample the arc densely (half-cell steps) and deduplicate consecutive
  // cells; robust for arbitrary polylines and exact enough at 50 m cells.
  const int steps =
      std::max(1, static_cast<int>(std::ceil(line.length() / (cell_size_ * 0.5))));
  std::vector<int> seq;
  seq.reserve(steps + 1);
  for (int i = 0; i <= steps; ++i) {
    const double ratio = static_cast<double>(i) / steps;
    const int cell = CellIndexOf(line.PointAt(ratio));
    if (seq.empty() || seq.back() != cell) seq.push_back(cell);
  }
  return seq;
}

}  // namespace rntraj
