#include "src/roadnet/shortest_path.h"

#include <algorithm>
#include <queue>

namespace rntraj {

const std::vector<double>& NetworkDistance::Row(int src) const {
  auto it = rows_.find(src);
  if (it != rows_.end()) return it->second;

  const int n = rn_->num_segments();
  std::vector<double> dist(n, kUnreachable);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    const double leave_cost = rn_->segment(u).length();
    for (int v : rn_->OutEdges(u)) {
      const double nd = d + leave_cost;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return rows_.emplace(src, std::move(dist)).first->second;
}

double NetworkDistance::CycleThrough(int seg) const {
  const double len = rn_->segment(seg).length();
  double best = kUnreachable;
  // Cheapest cycle = len(seg) + min over successors v of dist(v -> seg).
  for (int v : rn_->OutEdges(seg)) {
    const double back = Row(v)[seg];
    if (back < kUnreachable) best = std::min(best, len + back);
  }
  return best;
}

double NetworkDistance::PointToPoint(int seg_a, double ratio_a, int seg_b,
                                     double ratio_b) const {
  const double len_a = rn_->segment(seg_a).length();
  const double len_b = rn_->segment(seg_b).length();
  if (seg_a == seg_b) {
    if (ratio_b >= ratio_a) return (ratio_b - ratio_a) * len_a;
    const double cycle = CycleThrough(seg_a);
    if (cycle == kUnreachable) return kUnreachable;
    return cycle - ratio_a * len_a + ratio_b * len_a;
  }
  const double ss = StartToStart(seg_a, seg_b);
  if (ss == kUnreachable) return kUnreachable;
  return ss - ratio_a * len_a + ratio_b * len_b;
}

std::vector<int> ShortestSegmentPath(const RoadNetwork& rn, int from, int to) {
  const int n = rn.num_segments();
  std::vector<double> dist(n, NetworkDistance::kUnreachable);
  std::vector<int> parent(n, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[from] = 0.0;
  pq.push({0.0, from});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (u == to) break;
    if (d > dist[u]) continue;
    const double leave_cost = rn.segment(u).length();
    for (int v : rn.OutEdges(u)) {
      const double nd = d + leave_cost;
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        pq.push({nd, v});
      }
    }
  }
  if (from != to && dist[to] == NetworkDistance::kUnreachable) return {};
  std::vector<int> path;
  for (int cur = to; cur != -1; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != from) return {};
  return path;
}

double NetworkDistance::Symmetric(int seg_a, double ratio_a, int seg_b,
                                  double ratio_b) const {
  const double ab = PointToPoint(seg_a, ratio_a, seg_b, ratio_b);
  const double ba = PointToPoint(seg_b, ratio_b, seg_a, ratio_a);
  const double best = std::min(ab, ba);
  if (best < kUnreachable) return best;
  return Distance(rn_->PointAt(seg_a, ratio_a), rn_->PointAt(seg_b, ratio_b));
}

}  // namespace rntraj
