#include "src/roadnet/shortest_path.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <queue>

namespace rntraj {

NetworkDistance::RowPtr NetworkDistance::ComputeRow(int src) const {
  const int n = rn_->num_segments();
  auto dist = std::make_shared<std::vector<double>>(n, kUnreachable);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  (*dist)[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > (*dist)[u]) continue;
    const double leave_cost = rn_->segment(u).length();
    for (int v : rn_->OutEdges(u)) {
      const double nd = d + leave_cost;
      if (nd < (*dist)[v]) {
        (*dist)[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

void NetworkDistance::TouchLocked(int src) const {
  if (max_rows_ <= 0) return;
  auto it = rows_.find(src);
  if (it == rows_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void NetworkDistance::EvictLocked() const {
  while (max_rows_ > 0 && static_cast<int>(rows_.size()) > max_rows_) {
    rows_.erase(lru_.back());
    lru_.pop_back();
  }
}

NetworkDistance::RowPtr NetworkDistance::CachedRow(int src) const {
  // Hits return under the shared lock in both modes, so concurrent sessions
  // never serialize on lookups. In capped mode the recency update is
  // opportunistic (try_to_lock below): a skipped touch only degrades the
  // LRU towards FIFO, never correctness.
  std::shared_lock lock(mu_);
  auto it = rows_.find(src);
  if (it == rows_.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  RowPtr row = it->second.row;
  const bool touch = max_rows_ > 0;
  lock.unlock();
  if (touch) {
    std::unique_lock ul(mu_, std::try_to_lock);
    if (ul.owns_lock()) TouchLocked(src);
  }
  return row;
}

NetworkDistance::RowPtr NetworkDistance::Row(int src) const {
  if (RowPtr row = CachedRow(src)) return row;
  // Dijkstra outside any lock: concurrent misses on distinct sources run in
  // parallel (duplicated work on the same source is possible but harmless).
  RowPtr row = ComputeRow(src);
  std::unique_lock lock(mu_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto [it, inserted] = rows_.try_emplace(src);
  if (inserted) {
    lru_.push_front(src);
    it->second = {row, lru_.begin()};
    EvictLocked();
  }
  return it->second.row;
}

double NetworkDistance::TargetedSearch(int from, int to) const {
  // Same cost model as ComputeRow, but the heap stops as soon as the target
  // is settled: the first pop of `to` carries its final distance, so point
  // queries explore only the ball around the source that reaches the target
  // instead of the whole graph.
  const int n = rn_->num_segments();
  auto dist = std::make_shared<std::vector<double>>(n, kUnreachable);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  (*dist)[from] = 0.0;
  pq.push({0.0, from});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (u == to) return d;  // settled: d is final
    if (d > (*dist)[u]) continue;
    const double leave_cost = rn_->segment(u).length();
    for (int v : rn_->OutEdges(u)) {
      const double nd = d + leave_cost;
      if (nd < (*dist)[v]) {
        (*dist)[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  // Frontier exhausted without settling `to` (unreachable target): the run
  // did a full Dijkstra's work, so `dist` IS the complete source row —
  // cache it instead of discarding it, exactly as Row() would have.
  std::unique_lock lock(mu_);
  bounded_miss_counts_.erase(from);
  auto [it, inserted] = rows_.try_emplace(from);
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    lru_.push_front(from);
    it->second = {std::move(dist), lru_.begin()};
    EvictLocked();
  }
  return (*it->second.row)[to];
}

double NetworkDistance::BoundedStartToStart(int from, int to) const {
  if (RowPtr row = CachedRow(from)) return (*row)[to];
  // Miss: count it; frequent sources graduate to a full cached row so
  // many-targets-per-source workloads (HMM transitions, metric sweeps) keep
  // their amortised one-Dijkstra-per-source cost.
  int miss_count;
  {
    std::unique_lock lock(mu_);
    miss_count = ++bounded_miss_counts_[from];
    if (miss_count >= kPromoteMisses) bounded_miss_counts_.erase(from);
  }
  if (miss_count >= kPromoteMisses) return StartToStart(from, to);
  bounded_.fetch_add(1, std::memory_order_relaxed);
  return TargetedSearch(from, to);
}

void NetworkDistance::set_max_cached_rows(int cap) {
  // The recency list is maintained in both modes (hits just don't reorder it
  // while unbounded), so switching modes only needs an eviction sweep.
  std::unique_lock lock(mu_);
  max_rows_ = cap;
  EvictLocked();
}

double NetworkDistance::CycleThrough(int seg) const {
  const double len = rn_->segment(seg).length();
  double best = kUnreachable;
  // Cheapest cycle = len(seg) + min over successors v of dist(v -> seg);
  // each leg is a single-pair query, so the bounded search applies.
  for (int v : rn_->OutEdges(seg)) {
    const double back = BoundedStartToStart(v, seg);
    if (back < kUnreachable) best = std::min(best, len + back);
  }
  return best;
}

double NetworkDistance::PointToPoint(int seg_a, double ratio_a, int seg_b,
                                     double ratio_b) const {
  const double len_a = rn_->segment(seg_a).length();
  const double len_b = rn_->segment(seg_b).length();
  if (seg_a == seg_b) {
    if (ratio_b >= ratio_a) return (ratio_b - ratio_a) * len_a;
    const double cycle = CycleThrough(seg_a);
    if (cycle == kUnreachable) return kUnreachable;
    return cycle - ratio_a * len_a + ratio_b * len_a;
  }
  const double ss = BoundedStartToStart(seg_a, seg_b);
  if (ss == kUnreachable) return kUnreachable;
  return ss - ratio_a * len_a + ratio_b * len_b;
}

std::vector<int> ShortestSegmentPath(const RoadNetwork& rn, int from, int to) {
  const int n = rn.num_segments();
  std::vector<double> dist(n, NetworkDistance::kUnreachable);
  std::vector<int> parent(n, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[from] = 0.0;
  pq.push({0.0, from});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (u == to) break;
    if (d > dist[u]) continue;
    const double leave_cost = rn.segment(u).length();
    for (int v : rn.OutEdges(u)) {
      const double nd = d + leave_cost;
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        pq.push({nd, v});
      }
    }
  }
  if (from != to && dist[to] == NetworkDistance::kUnreachable) return {};
  std::vector<int> path;
  for (int cur = to; cur != -1; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != from) return {};
  return path;
}

double NetworkDistance::Symmetric(int seg_a, double ratio_a, int seg_b,
                                  double ratio_b) const {
  const double ab = PointToPoint(seg_a, ratio_a, seg_b, ratio_b);
  const double ba = PointToPoint(seg_b, ratio_b, seg_a, ratio_a);
  const double best = std::min(ab, ba);
  if (best < kUnreachable) return best;
  return Distance(rn_->PointAt(seg_a, ratio_a), rn_->PointAt(seg_b, ratio_b));
}

}  // namespace rntraj
