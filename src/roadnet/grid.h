#ifndef RNTRAJ_ROADNET_GRID_H_
#define RNTRAJ_ROADNET_GRID_H_

#include <vector>

#include "src/geo/geo.h"

/// \file grid.h
/// Equal-sized grid partition of the road-network area (paper §IV-B: 50 m x
/// 50 m cells). Provides the GPS-point -> cell lookup used by the encoders
/// and the segment -> grid-sequence rasterisation consumed by GridGNN.

namespace rntraj {

/// Maps planar points to cells of an m x n grid covering a bounding box.
class GridMapping {
 public:
  /// Covers `bounds` (plus a small margin) with square cells of `cell_size`
  /// meters.
  GridMapping(const BBox& bounds, double cell_size);

  /// Grid cell coordinate: gx indexes columns (x axis), gy rows (y axis).
  struct Cell {
    int gx = 0;
    int gy = 0;
    bool operator==(const Cell&) const = default;
  };

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int num_cells() const { return rows_ * cols_; }
  double cell_size() const { return cell_size_; }

  /// Cell containing `p`, clamped to the grid extent.
  Cell CellOf(const Vec2& p) const;

  /// Flattened index of a cell (row-major).
  int CellIndex(const Cell& c) const { return c.gy * cols_ + c.gx; }

  /// Flattened index of the cell containing `p`.
  int CellIndexOf(const Vec2& p) const { return CellIndex(CellOf(p)); }

  /// Centre point of a cell.
  Vec2 CellCenter(const Cell& c) const;

  /// Ordered sequence of distinct flattened cell indices that a polyline
  /// passes through (paper: the grid sequence S_i of road segment e_i).
  /// Consecutive duplicates are removed; the sequence always has >= 1 entry.
  std::vector<int> GridSequence(const Polyline& line) const;

 private:
  BBox bounds_;
  double cell_size_;
  int cols_;
  int rows_;
};

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_GRID_H_
