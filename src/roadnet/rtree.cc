#include "src/roadnet/rtree.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"

namespace rntraj {

namespace {

BBox Merge(const BBox& a, const BBox& b) {
  return {std::min(a.min_x, b.min_x), std::min(a.min_y, b.min_y),
          std::max(a.max_x, b.max_x), std::max(a.max_y, b.max_y)};
}

double CenterX(const BBox& b) { return 0.5 * (b.min_x + b.max_x); }
double CenterY(const BBox& b) { return 0.5 * (b.min_y + b.max_y); }

}  // namespace

RTree::RTree(const std::vector<BBox>& boxes, int node_capacity)
    : item_boxes_(boxes),
      num_items_(static_cast<int>(boxes.size())),
      capacity_(node_capacity) {
  RNTRAJ_CHECK(node_capacity >= 2);
  if (boxes.empty()) return;
  std::vector<int> ids(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) ids[i] = static_cast<int>(i);
  std::vector<int> level = PackLevel(std::move(ids), /*leaf_level=*/true);
  while (level.size() > 1) {
    level = PackLevel(std::move(level), /*leaf_level=*/false);
  }
  root_ = level[0];
}

std::vector<int> RTree::PackLevel(std::vector<int> entry_ids, bool leaf_level) {
  // Sort-Tile-Recursive packing: sort by centre x, cut into vertical slices,
  // sort each slice by centre y, emit runs of `capacity_` entries.
  auto box_of = [&](int id) -> const BBox& {
    return leaf_level ? item_boxes_[id] : nodes_[id].box;
  };
  const int n = static_cast<int>(entry_ids.size());
  const int num_nodes =
      (n + capacity_ - 1) / capacity_;
  const int num_slices =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(num_nodes))));
  const int slice_size = (n + num_slices - 1) / num_slices;

  std::sort(entry_ids.begin(), entry_ids.end(), [&](int a, int b) {
    return CenterX(box_of(a)) < CenterX(box_of(b));
  });

  std::vector<int> created;
  created.reserve(num_nodes);
  for (int s = 0; s < n; s += slice_size) {
    const int e = std::min(n, s + slice_size);
    std::sort(entry_ids.begin() + s, entry_ids.begin() + e, [&](int a, int b) {
      return CenterY(box_of(a)) < CenterY(box_of(b));
    });
    for (int i = s; i < e; i += capacity_) {
      Node node;
      node.leaf = leaf_level;
      const int j_end = std::min(e, i + capacity_);
      node.box = box_of(entry_ids[i]);
      for (int j = i; j < j_end; ++j) {
        node.entries.push_back(entry_ids[j]);
        node.box = Merge(node.box, box_of(entry_ids[j]));
      }
      created.push_back(static_cast<int>(nodes_.size()));
      nodes_.push_back(std::move(node));
    }
  }
  return created;
}

std::vector<int> RTree::Query(const BBox& query) const {
  std::vector<int> out;
  QueryScratch scratch;
  QueryInto(query, &scratch, &out);
  return out;
}

void RTree::QueryInto(const BBox& query, QueryScratch* scratch,
                      std::vector<int>* out) const {
  if (root_ < 0) return;
  std::vector<int>& stack = scratch->stack;
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      for (int id : node.entries) {
        if (item_boxes_[id].Intersects(query)) out->push_back(id);
      }
    } else {
      for (int child : node.entries) stack.push_back(child);
    }
  }
}

RTree BuildSegmentRTree(const RoadNetwork& rn) {
  std::vector<BBox> boxes;
  boxes.reserve(rn.num_segments());
  for (int i = 0; i < rn.num_segments(); ++i) {
    boxes.push_back(rn.segment(i).geometry.bounds());
  }
  return RTree(boxes);
}

namespace {

/// Shared worker for the single-point and batched radius entry points.
void SegmentsWithinRadiusInto(const RoadNetwork& rn, const RTree& rtree,
                              const Vec2& p, double radius,
                              RTree::QueryScratch* scratch,
                              std::vector<int>* candidates,
                              std::vector<NearbySegment>* out) {
  out->clear();
  double r = radius;
  // Expand until we find something (guarantees a non-empty sub-graph for
  // noisy points outside the nominal receptive field).
  for (int attempt = 0; attempt < 24 && out->empty(); ++attempt, r *= 2.0) {
    const BBox query = BBox::FromPoint(p).Buffered(r);
    candidates->clear();
    rtree.QueryInto(query, scratch, candidates);
    for (int id : *candidates) {
      PointProjection proj = rn.Project(p, id);
      if (proj.distance <= r) out->push_back({id, proj});
    }
  }
  SortNearbySegments(out);
}

}  // namespace

void SortNearbySegments(std::vector<NearbySegment>* segs) {
  std::sort(segs->begin(), segs->end(),
            [](const NearbySegment& a, const NearbySegment& b) {
              if (a.projection.distance != b.projection.distance) {
                return a.projection.distance < b.projection.distance;
              }
              return a.seg_id < b.seg_id;
            });
}

std::vector<NearbySegment> SegmentsWithinRadius(const RoadNetwork& rn,
                                                const RTree& rtree, const Vec2& p,
                                                double radius) {
  std::vector<NearbySegment> out;
  RTree::QueryScratch scratch;
  std::vector<int> candidates;
  SegmentsWithinRadiusInto(rn, rtree, p, radius, &scratch, &candidates, &out);
  return out;
}

std::vector<std::vector<NearbySegment>> BatchSegmentsWithinRadius(
    const RoadNetwork& rn, const RTree& rtree, const std::vector<Vec2>& points,
    double radius) {
  std::vector<std::vector<NearbySegment>> out(points.size());
  // Chunked so each worker reuses one traversal stack + candidate buffer for
  // its whole range instead of reallocating per point.
  ParallelFor(0, static_cast<int64_t>(points.size()), /*grain=*/8,
              [&](int64_t begin, int64_t end) {
                RTree::QueryScratch scratch;
                std::vector<int> candidates;
                for (int64_t i = begin; i < end; ++i) {
                  SegmentsWithinRadiusInto(rn, rtree, points[i], radius,
                                           &scratch, &candidates, &out[i]);
                }
              });
  return out;
}

}  // namespace rntraj
