#ifndef RNTRAJ_ROADNET_SUBGRAPH_H_
#define RNTRAJ_ROADNET_SUBGRAPH_H_

#include <utility>
#include <vector>

#include "src/roadnet/road_network.h"
#include "src/roadnet/rtree.h"

/// \file subgraph.h
/// Sub-Graph Generation (paper §IV-C): every GPS point is represented by the
/// weighted directed sub-graph of road segments within delta meters, with
/// node weights omega(e, p) = exp(-dist^2(e, p) / gamma^2) (paper Eq. (5)).

namespace rntraj {

/// The weighted sub-graph of the road network around one GPS point.
struct PointSubGraph {
  /// Global segment ids, ordered by ascending distance (local index = order).
  std::vector<int> seg_ids;
  /// Induced edges in local indices: E_p = (V_p x V_p) intersect E.
  std::vector<std::pair<int, int>> local_edges;
  /// Exact point-to-segment distances (meters), aligned with seg_ids.
  std::vector<double> distances;
  /// omega(e, p) weights, aligned with seg_ids.
  std::vector<double> weights;

  int size() const { return static_cast<int>(seg_ids.size()); }

  /// Local index of a global segment id, or -1 when absent.
  int LocalIndexOf(int seg_id) const {
    for (size_t i = 0; i < seg_ids.size(); ++i) {
      if (seg_ids[i] == seg_id) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Extracts the weighted sub-graph for a GPS point. `delta` is the receptive
/// field (paper: 400 m), `gamma` the weight length scale (paper: 30 m).
/// `max_nodes` caps the sub-graph at the closest segments to bound cost.
PointSubGraph ExtractPointSubGraph(const RoadNetwork& rn, const RTree& rtree,
                                   const Vec2& p, double delta, double gamma,
                                   int max_nodes = 64);

/// Same extraction answering the radius query through `source` instead of the
/// raw R-tree — the hook online inference uses to share cached roadnet work
/// across requests (the cache is exact, so outputs are identical).
PointSubGraph ExtractPointSubGraph(const RoadNetwork& rn,
                                   const SegmentQuerySource& source,
                                   const Vec2& p, double delta, double gamma,
                                   int max_nodes = 64);

/// Builds the sub-graph from an already-answered radius query (`near` must be
/// SegmentsWithinRadius output for (p, delta): sorted, non-empty).
PointSubGraph BuildPointSubGraph(const RoadNetwork& rn,
                                 std::vector<NearbySegment> near, double gamma,
                                 int max_nodes);

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_SUBGRAPH_H_
