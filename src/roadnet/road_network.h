#ifndef RNTRAJ_ROADNET_ROAD_NETWORK_H_
#define RNTRAJ_ROADNET_ROAD_NETWORK_H_

#include <utility>
#include <vector>

#include "src/geo/geo.h"

/// \file road_network.h
/// The directed road network of paper Definition 1: nodes are road segments,
/// edges capture segment-to-segment connectivity. Matches the paper's
/// edge-as-node ("dual") formulation, where every GPS point maps to a
/// (segment id, moving ratio) pair.

namespace rntraj {

/// Road functional classes. The paper one-hot encodes 8 levels as part of the
/// static segment features f_road.
enum class RoadLevel : int {
  kResidential = 0,
  kTertiary = 1,
  kSecondary = 2,
  kPrimary = 3,
  kTrunk = 4,
  kMotorwayRamp = 5,
  kMotorway = 6,
  kElevated = 7,
};

inline constexpr int kNumRoadLevels = 8;
/// Size of the per-segment static feature vector: 8 level one-hot + length +
/// in-degree + out-degree (paper §VI-A3: f_r = 11).
inline constexpr int kStaticFeatureDim = kNumRoadLevels + 3;

/// One directed road segment.
struct RoadSegment {
  int id = -1;
  Polyline geometry;
  RoadLevel level = RoadLevel::kResidential;

  bool elevated() const { return level == RoadLevel::kElevated; }
  double length() const { return geometry.length(); }
  Vec2 start() const { return geometry.points().front(); }
  Vec2 end() const { return geometry.points().back(); }
};

/// Directed graph over road segments (paper Definition 1).
class RoadNetwork {
 public:
  /// Adds a segment; returns its id.
  int AddSegment(std::vector<Vec2> polyline, RoadLevel level);

  /// Declares that `to` can be entered directly after traversing `from`.
  void AddEdge(int from, int to);

  /// Finalises degree counts and bounds; must be called after construction
  /// and before feature queries. Idempotent.
  void Build();

  int num_segments() const { return static_cast<int>(segments_.size()); }
  const RoadSegment& segment(int id) const { return segments_.at(id); }

  const std::vector<int>& OutEdges(int id) const { return out_.at(id); }
  const std::vector<int>& InEdges(int id) const { return in_.at(id); }

  /// All directed edges (from, to).
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// Bounding box over all segment geometry.
  const BBox& bounds() const { return bounds_; }

  /// Planar location of (segment, moving ratio).
  Vec2 PointAt(int seg_id, double ratio) const {
    return segment(seg_id).geometry.PointAt(ratio);
  }

  /// Projects a planar point onto a segment.
  PointProjection Project(const Vec2& p, int seg_id) const {
    return segment(seg_id).geometry.Project(p);
  }

  /// Static features (paper f_road, 11 dims): level one-hot (8), length
  /// normalised by 1km, in-degree, out-degree.
  std::vector<float> StaticFeatures(int seg_id) const;

  /// True if every segment can reach every other (used by simulator tests).
  bool IsStronglyConnected() const;

 private:
  std::vector<RoadSegment> segments_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  std::vector<std::pair<int, int>> edges_;
  BBox bounds_;
  bool built_ = false;
};

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_ROAD_NETWORK_H_
