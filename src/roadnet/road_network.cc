#include "src/roadnet/road_network.h"

#include <queue>

namespace rntraj {

int RoadNetwork::AddSegment(std::vector<Vec2> polyline, RoadLevel level) {
  RoadSegment seg;
  seg.id = static_cast<int>(segments_.size());
  seg.geometry = Polyline(std::move(polyline));
  seg.level = level;
  segments_.push_back(std::move(seg));
  out_.emplace_back();
  in_.emplace_back();
  built_ = false;
  return segments_.back().id;
}

void RoadNetwork::AddEdge(int from, int to) {
  RNTRAJ_CHECK(from >= 0 && from < num_segments());
  RNTRAJ_CHECK(to >= 0 && to < num_segments());
  if (from == to) return;  // self transitions are implicit
  out_[from].push_back(to);
  in_[to].push_back(from);
  edges_.emplace_back(from, to);
  built_ = false;
}

void RoadNetwork::Build() {
  RNTRAJ_CHECK_MSG(!segments_.empty(), "empty road network");
  bounds_ = segments_[0].geometry.bounds();
  for (const auto& s : segments_) {
    const BBox b = s.geometry.bounds();
    bounds_.ExpandToInclude({b.min_x, b.min_y});
    bounds_.ExpandToInclude({b.max_x, b.max_y});
  }
  built_ = true;
}

std::vector<float> RoadNetwork::StaticFeatures(int seg_id) const {
  RNTRAJ_CHECK_MSG(built_, "call Build() first");
  const RoadSegment& s = segment(seg_id);
  std::vector<float> f(kStaticFeatureDim, 0.0f);
  f[static_cast<int>(s.level)] = 1.0f;
  f[kNumRoadLevels + 0] = static_cast<float>(s.length() / 1000.0);
  f[kNumRoadLevels + 1] = static_cast<float>(InEdges(seg_id).size());
  f[kNumRoadLevels + 2] = static_cast<float>(OutEdges(seg_id).size());
  return f;
}

bool RoadNetwork::IsStronglyConnected() const {
  if (segments_.empty()) return true;
  // BFS forward and backward from node 0.
  auto reaches_all = [&](const std::vector<std::vector<int>>& adj) {
    std::vector<bool> seen(segments_.size(), false);
    std::queue<int> q;
    q.push(0);
    seen[0] = true;
    int count = 1;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          ++count;
          q.push(v);
        }
      }
    }
    return count == static_cast<int>(segments_.size());
  };
  return reaches_all(out_) && reaches_all(in_);
}

}  // namespace rntraj
