#include "src/roadnet/subgraph.h"

#include <cmath>
#include <unordered_map>

namespace rntraj {

PointSubGraph ExtractPointSubGraph(const RoadNetwork& rn, const RTree& rtree,
                                   const Vec2& p, double delta, double gamma,
                                   int max_nodes) {
  return BuildPointSubGraph(rn, SegmentsWithinRadius(rn, rtree, p, delta),
                            gamma, max_nodes);
}

PointSubGraph ExtractPointSubGraph(const RoadNetwork& rn,
                                   const SegmentQuerySource& source,
                                   const Vec2& p, double delta, double gamma,
                                   int max_nodes) {
  return BuildPointSubGraph(rn, source.WithinRadius(p, delta), gamma,
                            max_nodes);
}

PointSubGraph BuildPointSubGraph(const RoadNetwork& rn,
                                 std::vector<NearbySegment> near, double gamma,
                                 int max_nodes) {
  PointSubGraph sg;
  if (static_cast<int>(near.size()) > max_nodes) near.resize(max_nodes);

  std::unordered_map<int, int> local;
  local.reserve(near.size());
  for (const auto& ns : near) {
    local.emplace(ns.seg_id, static_cast<int>(sg.seg_ids.size()));
    sg.seg_ids.push_back(ns.seg_id);
    sg.distances.push_back(ns.projection.distance);
    const double z = ns.projection.distance / gamma;
    sg.weights.push_back(std::exp(-z * z));
  }
  // Induced edge set: follow the global graph between selected segments.
  for (size_t i = 0; i < sg.seg_ids.size(); ++i) {
    for (int to : rn.OutEdges(sg.seg_ids[i])) {
      auto it = local.find(to);
      if (it != local.end()) {
        sg.local_edges.emplace_back(static_cast<int>(i), it->second);
      }
    }
  }
  return sg;
}

}  // namespace rntraj
