#ifndef RNTRAJ_ROADNET_SHORTEST_PATH_H_
#define RNTRAJ_ROADNET_SHORTEST_PATH_H_

#include <atomic>
#include <limits>
#include <list>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/roadnet/road_network.h"

/// \file shortest_path.h
/// Travel distances along the directed road network, used by the HMM
/// transition model and the network-distance MAE/RMSE metrics (paper §VI-A2
/// adopts road-network distance for the location error).
///
/// Distance model: the cost of the path e_i -> k_1 -> ... -> k_m -> e_j is the
/// full length of every segment left behind (e_i and the k_t). With
/// `StartToStart(i, j)` = min over paths of sum(len(u_t), t < last), the
/// travel distance from point (e_i, r_a) to point (e_j, r_b) is
///   StartToStart(i, j) - r_a len_i + r_b len_j        (i != j)
///   (r_b - r_a) len_i                                  (i == j, r_b >= r_a)
///   CycleThrough(i) - r_a len_i + r_b len_i            (i == j, r_b < r_a).

namespace rntraj {

/// Lazy all-pairs network distances with per-source Dijkstra row caching.
///
/// Thread-safe: rows are computed outside the lock and shared through
/// reference-counted handles, so concurrent readers (serving sessions, the
/// data-parallel trainer) never block on each other's Dijkstra runs and never
/// observe a row mid-eviction. With `max_cached_rows` > 0 the cache is a true
/// LRU (the serving configuration: bounds memory at |V| doubles per row);
/// the default 0 keeps every row, matching the offline pipelines that sweep
/// all sources anyway.
class NetworkDistance {
 public:
  explicit NetworkDistance(const RoadNetwork* rn, int max_cached_rows = 0)
      : rn_(rn), max_rows_(max_cached_rows) {}

  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

  /// Caps the number of cached Dijkstra rows (0 = unbounded), evicting the
  /// least-recently-used rows immediately if over the new cap.
  void set_max_cached_rows(int cap);

  int max_cached_rows() const {
    std::shared_lock lock(mu_);
    return max_rows_;
  }

  /// Shortest travel distance from the start of segment `from` to the start
  /// of segment `to` (0 when from == to). Always computes (and caches) the
  /// full source row — the all-pairs sweep primitive.
  double StartToStart(int from, int to) const { return (*Row(from))[to]; }

  /// Shortest strictly-positive cycle leaving and re-entering segment `seg`.
  double CycleThrough(int seg) const;

  /// Directed travel distance between two on-network points.
  double PointToPoint(int seg_a, double ratio_a, int seg_b, double ratio_b) const;

  /// Symmetrised distance used by MAE/RMSE; falls back to the planar distance
  /// when the network offers no route in either direction.
  double Symmetric(int seg_a, double ratio_a, int seg_b, double ratio_b) const;

  /// Number of Dijkstra source rows currently cached (for tests/benchmarks).
  int cached_rows() const {
    std::shared_lock lock(mu_);
    return static_cast<int>(rows_.size());
  }

  /// Rows served from cache / computed (for serving telemetry).
  int64_t row_hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t row_misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Target-pruned Dijkstra runs taken by PointToPoint/CycleThrough on row
  /// misses (for tests/telemetry).
  int64_t bounded_searches() const {
    return bounded_.load(std::memory_order_relaxed);
  }

 private:
  /// Single-pair distance with an early-exit bound: a cached row answers
  /// immediately; otherwise a Dijkstra that stops the heap as soon as `to`
  /// is settled (instead of exhausting the frontier). Repeated misses on one
  /// source (kPromoteMisses) promote it to a full cached row, preserving the
  /// amortised one-Dijkstra-per-source cost of all-pairs sweeps.
  double BoundedStartToStart(int from, int to) const;

  /// The early-exit Dijkstra behind BoundedStartToStart. When the target is
  /// settled early the partial state is discarded (that is the saving); when
  /// the frontier exhausts first (unreachable target) the run has done a
  /// full row's work, so the completed row is cached as Row() would.
  double TargetedSearch(int from, int to) const;

  /// Bounded misses on one source before it graduates to a full Row().
  static constexpr int kPromoteMisses = 4;
  using RowPtr = std::shared_ptr<const std::vector<double>>;

  struct Entry {
    RowPtr row;
    std::list<int>::iterator lru_it;  ///< Position in lru_ (capped mode only).
  };

  RowPtr Row(int src) const;
  RowPtr ComputeRow(int src) const;
  /// Shared-lock cache lookup with hit accounting and the opportunistic LRU
  /// touch; null on miss. The one fast path under Row() and
  /// BoundedStartToStart().
  RowPtr CachedRow(int src) const;
  /// Inserts (or refreshes) under an already-held exclusive lock.
  void TouchLocked(int src) const;
  void EvictLocked() const;

  const RoadNetwork* rn_;
  int max_rows_ = 0;
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<int, Entry> rows_;
  mutable std::list<int> lru_;  ///< Front = most recently used.
  mutable std::unordered_map<int, int> bounded_miss_counts_;  ///< By mu_.
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> bounded_{0};
};

/// Shortest (by travelled length) segment sequence from `from` to `to`,
/// inclusive of both endpoints; empty when unreachable. Used by the route
/// sampler (vehicles drive purposeful shortest-ish routes) and by route
/// analysis tooling.
std::vector<int> ShortestSegmentPath(const RoadNetwork& rn, int from, int to);

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_SHORTEST_PATH_H_
