#ifndef RNTRAJ_ROADNET_SHORTEST_PATH_H_
#define RNTRAJ_ROADNET_SHORTEST_PATH_H_

#include <limits>
#include <unordered_map>
#include <vector>

#include "src/roadnet/road_network.h"

/// \file shortest_path.h
/// Travel distances along the directed road network, used by the HMM
/// transition model and the network-distance MAE/RMSE metrics (paper §VI-A2
/// adopts road-network distance for the location error).
///
/// Distance model: the cost of the path e_i -> k_1 -> ... -> k_m -> e_j is the
/// full length of every segment left behind (e_i and the k_t). With
/// `StartToStart(i, j)` = min over paths of sum(len(u_t), t < last), the
/// travel distance from point (e_i, r_a) to point (e_j, r_b) is
///   StartToStart(i, j) - r_a len_i + r_b len_j        (i != j)
///   (r_b - r_a) len_i                                  (i == j, r_b >= r_a)
///   CycleThrough(i) - r_a len_i + r_b len_i            (i == j, r_b < r_a).

namespace rntraj {

/// Lazy all-pairs network distances with per-source Dijkstra row caching.
class NetworkDistance {
 public:
  explicit NetworkDistance(const RoadNetwork* rn) : rn_(rn) {}

  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();

  /// Shortest travel distance from the start of segment `from` to the start
  /// of segment `to` (0 when from == to).
  double StartToStart(int from, int to) const { return Row(from)[to]; }

  /// Shortest strictly-positive cycle leaving and re-entering segment `seg`.
  double CycleThrough(int seg) const;

  /// Directed travel distance between two on-network points.
  double PointToPoint(int seg_a, double ratio_a, int seg_b, double ratio_b) const;

  /// Symmetrised distance used by MAE/RMSE; falls back to the planar distance
  /// when the network offers no route in either direction.
  double Symmetric(int seg_a, double ratio_a, int seg_b, double ratio_b) const;

  /// Number of Dijkstra source rows computed so far (for tests/benchmarks).
  int cached_rows() const { return static_cast<int>(rows_.size()); }

 private:
  const std::vector<double>& Row(int src) const;

  const RoadNetwork* rn_;
  mutable std::unordered_map<int, std::vector<double>> rows_;
};

/// Shortest (by travelled length) segment sequence from `from` to `to`,
/// inclusive of both endpoints; empty when unreachable. Used by the route
/// sampler (vehicles drive purposeful shortest-ish routes) and by route
/// analysis tooling.
std::vector<int> ShortestSegmentPath(const RoadNetwork& rn, int from, int to);

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_SHORTEST_PATH_H_
