#ifndef RNTRAJ_ROADNET_RTREE_H_
#define RNTRAJ_ROADNET_RTREE_H_

#include <utility>
#include <vector>

#include "src/geo/geo.h"
#include "src/roadnet/road_network.h"

/// \file rtree.h
/// Static STR-packed R-tree over rectangles (Guttman [51] / Leutenegger STR
/// packing). Used by Sub-Graph Generation (paper §IV-C) and HMM candidate
/// search to find road segments near a GPS point.

namespace rntraj {

/// Bulk-loaded R-tree; immutable after construction (and therefore safe to
/// query from any number of threads concurrently).
class RTree {
 public:
  /// Builds over `boxes`; result ids refer to positions in this vector.
  explicit RTree(const std::vector<BBox>& boxes, int node_capacity = 8);

  /// Reusable traversal scratch for allocation-free repeated queries.
  struct QueryScratch {
    std::vector<int> stack;
  };

  /// Ids of all boxes intersecting the query box.
  std::vector<int> Query(const BBox& query) const;

  /// Appends ids of all boxes intersecting `query` to `*out` (not cleared),
  /// reusing `*scratch` for the traversal stack. The allocation-free variant
  /// for hot loops (batched radius queries, serving caches).
  void QueryInto(const BBox& query, QueryScratch* scratch,
                 std::vector<int>* out) const;

  int size() const { return num_items_; }

 private:
  struct Node {
    BBox box;
    bool leaf = false;
    /// Children node indices (internal) or item ids (leaf).
    std::vector<int> entries;
  };

  /// Builds one level over entry indices; returns created node indices.
  std::vector<int> PackLevel(std::vector<int> entry_ids, bool leaf_level);

  std::vector<Node> nodes_;
  std::vector<BBox> item_boxes_;
  int root_ = -1;
  int num_items_ = 0;
  int capacity_ = 8;
};

/// A road segment near a query point together with its exact projection.
struct NearbySegment {
  int seg_id = -1;
  PointProjection projection;
};

/// All segments whose exact geometric distance to `p` is at most `radius`,
/// sorted by ascending distance (ties broken by segment id, so the ordering
/// is deterministic and reproducible by cached query paths). When nothing is
/// inside the radius the search expands (doubling) until at least one segment
/// is found, so the result is never empty on a non-empty network — the
/// behaviour Sub-Graph Generation needs for far-off noisy points.
std::vector<NearbySegment> SegmentsWithinRadius(const RoadNetwork& rn,
                                                const RTree& rtree, const Vec2& p,
                                                double radius);

/// Canonical ordering of radius-query results: ascending exact distance,
/// ties broken by segment id. Exposed so cached query paths (serving) can
/// reproduce SegmentsWithinRadius output bit-for-bit.
void SortNearbySegments(std::vector<NearbySegment>* segs);

/// Radius queries for a batch of points, parallelised over the shared thread
/// pool with per-chunk scratch reuse (the allocation churn of the one-point
/// entry point is the measurable cost at batch sizes; see
/// BM_RTreeRadiusQueryBatch). `out[i]` corresponds to `points[i]` and is
/// element-wise identical to SegmentsWithinRadius(rn, rtree, points[i], r).
std::vector<std::vector<NearbySegment>> BatchSegmentsWithinRadius(
    const RoadNetwork& rn, const RTree& rtree, const std::vector<Vec2>& points,
    double radius);

/// Source of radius queries against one road network. The default
/// implementation answers straight from the R-tree; the serving subsystem
/// substitutes a grid-cell-keyed LRU cache (src/serve/roadnet_cache.h) whose
/// results are exact — models call through this interface so online sessions
/// can share hot roadnet work across requests without changing outputs.
class SegmentQuerySource {
 public:
  virtual ~SegmentQuerySource() = default;

  /// Same contract as SegmentsWithinRadius (sorted, never empty on a
  /// non-empty network).
  virtual std::vector<NearbySegment> WithinRadius(const Vec2& p,
                                                  double radius) const = 0;
};

/// The pass-through SegmentQuerySource over a network + R-tree pair.
class DirectSegmentQuerySource : public SegmentQuerySource {
 public:
  DirectSegmentQuerySource(const RoadNetwork* rn, const RTree* rtree)
      : rn_(rn), rtree_(rtree) {}

  std::vector<NearbySegment> WithinRadius(const Vec2& p,
                                          double radius) const override {
    return SegmentsWithinRadius(*rn_, *rtree_, p, radius);
  }

 private:
  const RoadNetwork* rn_;
  const RTree* rtree_;
};

/// Builds an R-tree over all segment geometries of a road network.
RTree BuildSegmentRTree(const RoadNetwork& rn);

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_RTREE_H_
