#ifndef RNTRAJ_ROADNET_RTREE_H_
#define RNTRAJ_ROADNET_RTREE_H_

#include <utility>
#include <vector>

#include "src/geo/geo.h"
#include "src/roadnet/road_network.h"

/// \file rtree.h
/// Static STR-packed R-tree over rectangles (Guttman [51] / Leutenegger STR
/// packing). Used by Sub-Graph Generation (paper §IV-C) and HMM candidate
/// search to find road segments near a GPS point.

namespace rntraj {

/// Bulk-loaded R-tree; immutable after construction.
class RTree {
 public:
  /// Builds over `boxes`; result ids refer to positions in this vector.
  explicit RTree(const std::vector<BBox>& boxes, int node_capacity = 8);

  /// Ids of all boxes intersecting the query box.
  std::vector<int> Query(const BBox& query) const;

  int size() const { return num_items_; }

 private:
  struct Node {
    BBox box;
    bool leaf = false;
    /// Children node indices (internal) or item ids (leaf).
    std::vector<int> entries;
  };

  /// Builds one level over entry indices; returns created node indices.
  std::vector<int> PackLevel(std::vector<int> entry_ids, bool leaf_level);

  std::vector<Node> nodes_;
  std::vector<BBox> item_boxes_;
  int root_ = -1;
  int num_items_ = 0;
  int capacity_ = 8;
};

/// A road segment near a query point together with its exact projection.
struct NearbySegment {
  int seg_id = -1;
  PointProjection projection;
};

/// All segments whose exact geometric distance to `p` is at most `radius`,
/// sorted by ascending distance. When nothing is inside the radius the search
/// expands (doubling) until at least one segment is found, so the result is
/// never empty on a non-empty network — the behaviour Sub-Graph Generation
/// needs for far-off noisy points.
std::vector<NearbySegment> SegmentsWithinRadius(const RoadNetwork& rn,
                                                const RTree& rtree, const Vec2& p,
                                                double radius);

/// Builds an R-tree over all segment geometries of a road network.
RTree BuildSegmentRTree(const RoadNetwork& rn);

}  // namespace rntraj

#endif  // RNTRAJ_ROADNET_RTREE_H_
