#ifndef RNTRAJ_CORE_GRL_H_
#define RNTRAJ_CORE_GRL_H_

#include <memory>
#include <vector>

#include "src/nn/graph.h"
#include "src/nn/linear.h"
#include "src/nn/norm.h"
#include "src/nn/transformer.h"
#include "src/tensor/ops.h"

/// \file grl.h
/// Graph Refinement Layer (paper §IV-D, Fig. 3): the spatial half of a
/// GPSFormer block. Per sub-layer residual structure
/// GraphNorm(x + SubLayer(x)), where the first sub-layer is GatedFusion
/// (Eq. (7)) mixing the transformer output into each sub-graph's node
/// features and the second is GraphForward (a stack of P GAT layers).
///
/// Ablation switches reproduce Table V variants: `use_gated_fusion=false`
/// replaces gated fusion by concat+FFN (w/o GF), `use_graph_norm=false`
/// swaps GraphNorm for LayerNorm (w/o GN), `use_gat=false` swaps
/// GraphForward for a feed-forward network (w/o GAT).

namespace rntraj {

/// GRL hyper-parameters and ablation switches.
struct GrlConfig {
  int dim = 32;
  int gat_layers = 1;  ///< P (paper: 1).
  int heads = 4;
  bool use_gated_fusion = true;
  bool use_graph_norm = true;
  bool use_gat = true;
};

/// One graph refinement layer. Operates on all timesteps of one trajectory
/// jointly so GraphNorm sees the full set of sub-graphs (paper Eq. (9)).
class GraphRefinementLayer : public Module {
 public:
  explicit GraphRefinementLayer(const GrlConfig& config);

  /// `tr`: (l, d) transformer-encoder output; `z[i]`: (n_i, d) node features
  /// of timestep i's sub-graph; `graphs[i]`: matching dense masks.
  /// Returns the refined node features (same shapes as `z`).
  std::vector<Tensor> Forward(const Tensor& tr, const std::vector<Tensor>& z,
                              const std::vector<const DenseGraph*>& graphs);

  /// Cross-sample batched layer. `tr` holds the valid encoder rows of every
  /// sample back to back ((sum of lengths, d)); `z` is the flat node-feature
  /// tensor of all sub-graphs across the batch (samples in order, timesteps
  /// in order within each sample) with `graphs` — the block-diagonal
  /// connectivity of ALL those sub-graphs — aligned to the same flat order;
  /// `sample_graph_counts[s]` is sample s's timestep count.
  ///
  /// Everything is batched: the gated-fusion projections run as single fat
  /// GEMMs over all nodes / all timesteps of the whole batch, and GAT
  /// propagation runs ONE GatLayer::ForwardBatched pass over the packed
  /// block-diagonal masks (per-graph softmax blocks, so sub-graphs still
  /// never attend across each other). Normalisation stays per sample, so
  /// GraphNorm batch statistics cover exactly the sub-graphs the per-sample
  /// path gives it (paper Eq. (9)) and every node feature matches Forward
  /// over each sample alone within float rounding. Returns the refined flat
  /// tensor.
  Tensor ForwardBatch(const Tensor& tr, const Tensor& z,
                      const BatchedDenseGraph& graphs,
                      const std::vector<int>& sample_graph_counts);

 private:
  /// Per-sample normalisation of a flat (sum nodes, d) tensor (batched
  /// counterpart of Normalise): GraphNorm statistics are computed per sample
  /// over that sample's sub-graph span.
  Tensor NormaliseBatch(int which, const Tensor& flat,
                        const std::vector<int>& graph_sizes,
                        const std::vector<int>& sample_graph_counts);
  /// GatedFusion (Eq. (7)) or the w/o-GF concat+FFN replacement.
  Tensor Fuse(const Tensor& tr_row, const Tensor& z_i) const;

  /// Concat -> normalise -> split, with GraphNorm or LayerNorm.
  std::vector<Tensor> Normalise(int which, const std::vector<Tensor>& parts);

  GrlConfig cfg_;
  // Gated fusion parameters (Eq. (7)).
  Tensor wz1_;
  Tensor wz2_;
  Tensor bz_;
  // w/o GF replacement.
  Linear fuse_lin_;
  // Graph forward: P GAT layers, or the w/o-GAT feed-forward.
  std::vector<std::unique_ptr<GatLayer>> gat_;
  FeedForward fwd_ffn_;
  // Normalisation (two sub-layers).
  GraphNorm gn1_;
  GraphNorm gn2_;
  LayerNorm ln1_;
  LayerNorm ln2_;
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_GRL_H_
