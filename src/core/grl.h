#ifndef RNTRAJ_CORE_GRL_H_
#define RNTRAJ_CORE_GRL_H_

#include <memory>
#include <vector>

#include "src/nn/graph.h"
#include "src/nn/linear.h"
#include "src/nn/norm.h"
#include "src/nn/transformer.h"
#include "src/tensor/ops.h"

/// \file grl.h
/// Graph Refinement Layer (paper §IV-D, Fig. 3): the spatial half of a
/// GPSFormer block. Per sub-layer residual structure
/// GraphNorm(x + SubLayer(x)), where the first sub-layer is GatedFusion
/// (Eq. (7)) mixing the transformer output into each sub-graph's node
/// features and the second is GraphForward (a stack of P GAT layers).
///
/// Ablation switches reproduce Table V variants: `use_gated_fusion=false`
/// replaces gated fusion by concat+FFN (w/o GF), `use_graph_norm=false`
/// swaps GraphNorm for LayerNorm (w/o GN), `use_gat=false` swaps
/// GraphForward for a feed-forward network (w/o GAT).

namespace rntraj {

/// GRL hyper-parameters and ablation switches.
struct GrlConfig {
  int dim = 32;
  int gat_layers = 1;  ///< P (paper: 1).
  int heads = 4;
  bool use_gated_fusion = true;
  bool use_graph_norm = true;
  bool use_gat = true;
};

/// One graph refinement layer. Operates on all timesteps of one trajectory
/// jointly so GraphNorm sees the full set of sub-graphs (paper Eq. (9)).
class GraphRefinementLayer : public Module {
 public:
  explicit GraphRefinementLayer(const GrlConfig& config);

  /// `tr`: (l, d) transformer-encoder output; `z[i]`: (n_i, d) node features
  /// of timestep i's sub-graph; `graphs[i]`: matching dense masks.
  /// Returns the refined node features (same shapes as `z`).
  std::vector<Tensor> Forward(const Tensor& tr, const std::vector<Tensor>& z,
                              const std::vector<const DenseGraph*>& graphs);

 private:
  /// GatedFusion (Eq. (7)) or the w/o-GF concat+FFN replacement.
  Tensor Fuse(const Tensor& tr_row, const Tensor& z_i) const;

  /// Concat -> normalise -> split, with GraphNorm or LayerNorm.
  std::vector<Tensor> Normalise(int which, const std::vector<Tensor>& parts);

  GrlConfig cfg_;
  // Gated fusion parameters (Eq. (7)).
  Tensor wz1_;
  Tensor wz2_;
  Tensor bz_;
  // w/o GF replacement.
  Linear fuse_lin_;
  // Graph forward: P GAT layers, or the w/o-GAT feed-forward.
  std::vector<std::unique_ptr<GatLayer>> gat_;
  FeedForward fwd_ffn_;
  // Normalisation (two sub-layers).
  GraphNorm gn1_;
  GraphNorm gn2_;
  LayerNorm ln1_;
  LayerNorm ln2_;
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_GRL_H_
