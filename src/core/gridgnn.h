#ifndef RNTRAJ_CORE_GRIDGNN_H_
#define RNTRAJ_CORE_GRIDGNN_H_

#include <memory>
#include <vector>

#include "src/nn/graph.h"
#include "src/nn/linear.h"
#include "src/nn/rnn.h"
#include "src/roadnet/grid.h"
#include "src/roadnet/road_network.h"
#include "src/tensor/ops.h"

/// \file gridgnn.h
/// GridGNN (paper §IV-B): the road-network representation module. Every
/// segment is a grid-cell sequence aggregated by a GRU (Eq. (1)-(2)), added
/// to a per-segment id embedding, refined by M GAT layers (Eq. (3)-(4)), and
/// concatenated with the static features f_road before a linear projection to
/// X_road in R^{|V| x d}.
///
/// The grid GRU runs *batched over all segments*: one GRUCell step advances
/// every segment's sequence at once (padded with a freeze mask), which is the
/// CPU-friendly equivalent of the paper's per-segment recurrence.

namespace rntraj {

/// Road-representation variants (Fig. 7(a) compares GridGNN against plain
/// GCN / GIN / GAT over segment-id embeddings only).
enum class RoadEncoderKind { kGridGnn, kGat, kGcn, kGin };

/// GridGNN hyper-parameters.
struct GridGnnConfig {
  int dim = 32;             ///< Hidden size d.
  int gnn_layers = 2;       ///< M (paper: 2).
  int heads = 4;            ///< GAT attention heads (paper: 8 at d=512).
  RoadEncoderKind kind = RoadEncoderKind::kGridGnn;
};

/// Learns X_road; recomputed every optimiser step (gradients flow into the
/// grid and segment embedding tables).
class GridGnn : public Module {
 public:
  GridGnn(const GridGnnConfig& config, const RoadNetwork* rn,
          const GridMapping* grid);

  /// (|V|, d) road-network representation.
  Tensor Forward() const;

  const GridGnnConfig& config() const { return cfg_; }

 private:
  Tensor GridSequenceEncoding() const;

  GridGnnConfig cfg_;
  const RoadNetwork* rn_;
  Embedding grid_emb_;
  Embedding seg_emb_;
  GruCell grid_gru_;
  std::vector<std::unique_ptr<GatLayer>> gat_;
  std::vector<std::unique_ptr<GcnLayer>> gcn_;
  std::vector<std::unique_ptr<GinLayer>> gin_;
  Linear out_;
  DenseGraph road_graph_;
  Tensor static_features_;  ///< (|V|, 11) constant.
  /// Padded grid sequences: step -> cell index per segment, plus freeze masks.
  std::vector<std::vector<int>> step_cells_;
  std::vector<Tensor> step_masks_;  ///< (|V|, 1) constants: 1 = still active.
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_GRIDGNN_H_
