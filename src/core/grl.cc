#include "src/core/grl.h"

#include "src/nn/init.h"

namespace rntraj {

GraphRefinementLayer::GraphRefinementLayer(const GrlConfig& config)
    : cfg_(config),
      fuse_lin_(2 * config.dim, config.dim),
      fwd_ffn_(config.dim, 2 * config.dim),
      gn1_(config.dim),
      gn2_(config.dim),
      ln1_(config.dim),
      ln2_(config.dim) {
  wz1_ = RegisterParameter("wz1", XavierUniform(cfg_.dim, cfg_.dim));
  wz2_ = RegisterParameter("wz2", XavierUniform(cfg_.dim, cfg_.dim));
  bz_ = RegisterParameter("bz", Tensor::Zeros({cfg_.dim}));
  RegisterChild("fuse_lin", &fuse_lin_);
  RegisterChild("fwd_ffn", &fwd_ffn_);
  for (int p = 0; p < cfg_.gat_layers; ++p) {
    gat_.push_back(std::make_unique<GatLayer>(cfg_.dim, cfg_.heads));
    RegisterChild("gat" + std::to_string(p), gat_.back().get());
  }
  if (cfg_.use_graph_norm) {
    RegisterChild("gn1", &gn1_);
    RegisterChild("gn2", &gn2_);
  } else {
    RegisterChild("ln1", &ln1_);
    RegisterChild("ln2", &ln2_);
  }
}

Tensor GraphRefinementLayer::Fuse(const Tensor& tr_row, const Tensor& z_i) const {
  const int n = z_i.dim(0);
  Tensor trx = ExpandRows(tr_row, n);  // (n_i, d)
  if (!cfg_.use_gated_fusion) {
    // Table V "w/o GF": concatenation + feed-forward.
    return Relu(fuse_lin_.Forward(ConcatCols({trx, z_i})));
  }
  // Eq. (7): z = sigma(tr W1 + Z W2 + b); out = z*tr + (1-z)*Z.
  // tr W1 is the same row for every node, so project the single row and
  // broadcast it, instead of multiplying the expanded (n_i, d) copy.
  Tensor gate = Sigmoid(AddRowBroadcast(
      AddRowBroadcast(Matmul(z_i, wz2_), bz_), Matmul(tr_row, wz1_)));
  return Add(Mul(gate, trx), Mul(AddScalar(Neg(gate), 1.0f), z_i));
}

std::vector<Tensor> GraphRefinementLayer::Normalise(
    int which, const std::vector<Tensor>& parts) {
  std::vector<int> sizes;
  sizes.reserve(parts.size());
  for (const auto& p : parts) sizes.push_back(p.dim(0));
  Tensor all = ConcatRows(parts);
  Tensor normed;
  if (cfg_.use_graph_norm) {
    normed = (which == 0 ? gn1_ : gn2_).Forward(all, sizes);
  } else {
    normed = (which == 0 ? ln1_ : ln2_).Forward(all);
  }
  std::vector<Tensor> out;
  out.reserve(parts.size());
  int off = 0;
  for (int s : sizes) {
    out.push_back(SliceRows(normed, off, s));
    off += s;
  }
  return out;
}

std::vector<Tensor> GraphRefinementLayer::Forward(
    const Tensor& tr, const std::vector<Tensor>& z,
    const std::vector<const DenseGraph*>& graphs) {
  RNTRAJ_CHECK(static_cast<size_t>(tr.dim(0)) == z.size());
  RNTRAJ_CHECK(z.size() == graphs.size());
  const int l = tr.dim(0);

  // Sub-layer 1: GraphNorm(x + GatedFusion(x)).
  std::vector<Tensor> fused;
  fused.reserve(l);
  for (int i = 0; i < l; ++i) {
    Tensor tr_row = SliceRows(tr, i, 1);
    fused.push_back(Add(z[i], Fuse(tr_row, z[i])));
  }
  std::vector<Tensor> a = Normalise(0, fused);

  // Sub-layer 2: GraphNorm(x + GraphForward(x)).
  std::vector<Tensor> forwarded;
  forwarded.reserve(l);
  for (int i = 0; i < l; ++i) {
    Tensor g = a[i];
    if (cfg_.use_gat) {
      for (auto& layer : gat_) g = layer->Forward(g, *graphs[i]);
    } else {
      g = fwd_ffn_.Forward(g);  // Table V "w/o GAT"
    }
    forwarded.push_back(Add(a[i], g));
  }
  return Normalise(1, forwarded);
}

}  // namespace rntraj
