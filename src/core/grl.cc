#include "src/core/grl.h"

#include "src/obs/stage_profiler.h"
#include "src/tensor/fusion.h"

#include "src/nn/init.h"

namespace rntraj {

GraphRefinementLayer::GraphRefinementLayer(const GrlConfig& config)
    : cfg_(config),
      fuse_lin_(2 * config.dim, config.dim),
      fwd_ffn_(config.dim, 2 * config.dim),
      gn1_(config.dim),
      gn2_(config.dim),
      ln1_(config.dim),
      ln2_(config.dim) {
  wz1_ = RegisterParameter("wz1", XavierUniform(cfg_.dim, cfg_.dim));
  wz2_ = RegisterParameter("wz2", XavierUniform(cfg_.dim, cfg_.dim));
  bz_ = RegisterParameter("bz", Tensor::Zeros({cfg_.dim}));
  RegisterChild("fuse_lin", &fuse_lin_);
  RegisterChild("fwd_ffn", &fwd_ffn_);
  for (int p = 0; p < cfg_.gat_layers; ++p) {
    gat_.push_back(std::make_unique<GatLayer>(cfg_.dim, cfg_.heads));
    RegisterChild("gat" + std::to_string(p), gat_.back().get());
  }
  if (cfg_.use_graph_norm) {
    RegisterChild("gn1", &gn1_);
    RegisterChild("gn2", &gn2_);
  } else {
    RegisterChild("ln1", &ln1_);
    RegisterChild("ln2", &ln2_);
  }
}

Tensor GraphRefinementLayer::Fuse(const Tensor& tr_row, const Tensor& z_i) const {
  const int n = z_i.dim(0);
  Tensor trx = ExpandRows(tr_row, n);  // (n_i, d)
  if (!cfg_.use_gated_fusion) {
    // Table V "w/o GF": concatenation + feed-forward.
    return Relu(fuse_lin_.Forward(ConcatCols({trx, z_i})));
  }
  // Eq. (7): z = sigma(tr W1 + Z W2 + b); out = z*tr + (1-z)*Z.
  // tr W1 is the same row for every node, so project the single row and
  // broadcast it, instead of multiplying the expanded (n_i, d) copy.
  // The outer broadcast-add + sigmoid goes through the fused emission point
  // (the projected trajectory row acts as the "bias", and carries grad).
  Tensor gate =
      fusion::BiasAct(AddRowBroadcast(Matmul(z_i, wz2_), bz_),
                      Matmul(tr_row, wz1_), fusion::Act::kSigmoid);
  return Add(Mul(gate, trx), Mul(AddScalar(Neg(gate), 1.0f), z_i));
}

std::vector<Tensor> GraphRefinementLayer::Normalise(
    int which, const std::vector<Tensor>& parts) {
  std::vector<int> sizes;
  sizes.reserve(parts.size());
  for (const auto& p : parts) sizes.push_back(p.dim(0));
  Tensor all = ConcatRows(parts);
  Tensor normed;
  if (cfg_.use_graph_norm) {
    normed = (which == 0 ? gn1_ : gn2_).Forward(all, sizes);
  } else {
    normed = (which == 0 ? ln1_ : ln2_).Forward(all);
  }
  std::vector<Tensor> out;
  out.reserve(parts.size());
  int off = 0;
  for (int s : sizes) {
    out.push_back(SliceRows(normed, off, s));
    off += s;
  }
  return out;
}

Tensor GraphRefinementLayer::NormaliseBatch(
    int which, const Tensor& flat, const std::vector<int>& graph_sizes,
    const std::vector<int>& sample_graph_counts) {
  // LayerNorm is row-local: one pass over the whole batch equals the
  // per-sample passes exactly.
  if (!cfg_.use_graph_norm) {
    return (which == 0 ? ln1_ : ln2_).Forward(flat);
  }
  // GraphNorm: statistics must span exactly one sample's sub-graphs (the
  // per-sample path's Normalise), so slice the flat tensor per sample —
  // but only while training: eval-mode GraphNorm reads running statistics
  // only (row-local), so one pass over the whole batch is elementwise
  // identical to the per-sample passes and skips the slice/concat churn.
  GraphNorm& gn = which == 0 ? gn1_ : gn2_;
  if (!gn.training()) {
    return gn.Forward(flat, graph_sizes);
  }
  std::vector<Tensor> parts;
  parts.reserve(sample_graph_counts.size());
  int g = 0;
  int row = 0;
  for (int count : sample_graph_counts) {
    std::vector<int> sizes(graph_sizes.begin() + g,
                           graph_sizes.begin() + g + count);
    int rows = 0;
    for (int s : sizes) rows += s;
    parts.push_back(gn.Forward(SliceRows(flat, row, rows), sizes));
    g += count;
    row += rows;
  }
  return parts.size() == 1 ? parts[0] : ConcatRows(parts);
}

Tensor GraphRefinementLayer::ForwardBatch(
    const Tensor& tr, const Tensor& z, const BatchedDenseGraph& graphs,
    const std::vector<int>& sample_graph_counts) {
  const std::vector<int>& graph_sizes = graphs.sizes;
  const int num_graphs = graphs.num_graphs;
  RNTRAJ_CHECK(tr.dim(0) == num_graphs);
  std::vector<int> node2graph;
  node2graph.reserve(graphs.total_nodes);
  for (int g = 0; g < num_graphs; ++g) {
    node2graph.insert(node2graph.end(), graph_sizes[g], g);
  }
  RNTRAJ_CHECK(z.dim(0) == graphs.total_nodes);

  // Sub-layer 1: GraphNorm(x + GatedFusion(x)), fused across the batch. The
  // node-side and timestep-side projections are single fat GEMMs over all
  // nodes / all timesteps; GatherRows broadcasts each timestep's row to its
  // sub-graph's nodes (elementwise identical to the per-sample Fuse).
  // Stage attribution: kGrl times the fusion + norm sub-layers, kGat the
  // GAT propagation alone — disjoint scopes, so the profile splits "graph
  // attention" from "the rest of the refinement layer" (RNTrajRec Fig. 6's
  // efficiency axis; the fusion-target data for ROADMAP open item 1).
  Tensor a;
  {
    obs::ScopedStage stage(obs::Stage::kGrl);
    Tensor trx = GatherRows(tr, node2graph);  // (total_nodes, d)
    Tensor fuse_out;
    if (cfg_.use_gated_fusion) {
      // Eq. (7): z = sigma(tr W1 + Z W2 + b); out = z*tr + (1-z)*Z.
      Tensor trw1 = Matmul(tr, wz1_);  // (num_graphs, d)
      Tensor gate =
          fusion::BiasAct(AddRowBroadcast(Matmul(z, wz2_), bz_),
                          GatherRows(trw1, node2graph), fusion::Act::kSigmoid);
      fuse_out = Add(Mul(gate, trx), Mul(AddScalar(Neg(gate), 1.0f), z));
    } else {
      // Table V "w/o GF": concatenation + feed-forward.
      fuse_out = Relu(fuse_lin_.Forward(ConcatCols({trx, z})));
    }
    a = NormaliseBatch(0, Add(z, fuse_out), graph_sizes,
                       sample_graph_counts);
  }

  // Sub-layer 2: GraphNorm(x + GraphForward(x)). GAT propagation runs ONE
  // block-diagonal batched pass over all sub-graphs (per-graph softmax
  // blocks in GatLayer::ForwardBatched keep neighbourhoods intact); the
  // w/o-GAT feed-forward replacement is row-local and runs in one GEMM.
  Tensor forwarded;
  if (cfg_.use_gat) {
    Tensor prop = a;
    {
      obs::ScopedStage stage(obs::Stage::kGat);
      for (auto& layer : gat_) prop = layer->ForwardBatched(prop, graphs);
    }
    forwarded = Add(a, prop);
  } else {
    obs::ScopedStage stage(obs::Stage::kGrl);
    forwarded = Add(a, fwd_ffn_.Forward(a));
  }
  obs::ScopedStage stage(obs::Stage::kGrl);
  return NormaliseBatch(1, forwarded, graph_sizes, sample_graph_counts);
}

std::vector<Tensor> GraphRefinementLayer::Forward(
    const Tensor& tr, const std::vector<Tensor>& z,
    const std::vector<const DenseGraph*>& graphs) {
  RNTRAJ_CHECK(static_cast<size_t>(tr.dim(0)) == z.size());
  RNTRAJ_CHECK(z.size() == graphs.size());
  const int l = tr.dim(0);

  // Sub-layer 1: GraphNorm(x + GatedFusion(x)).
  std::vector<Tensor> a;
  {
    obs::ScopedStage stage(obs::Stage::kGrl);
    std::vector<Tensor> fused;
    fused.reserve(l);
    for (int i = 0; i < l; ++i) {
      Tensor tr_row = SliceRows(tr, i, 1);
      fused.push_back(Add(z[i], Fuse(tr_row, z[i])));
    }
    a = Normalise(0, fused);
  }

  // Sub-layer 2: GraphNorm(x + GraphForward(x)). Same stage split as the
  // batched path: kGat covers only the attention propagation.
  std::vector<Tensor> forwarded;
  forwarded.reserve(l);
  if (cfg_.use_gat) {
    obs::ScopedStage stage(obs::Stage::kGat);
    for (int i = 0; i < l; ++i) {
      Tensor g = a[i];
      for (auto& layer : gat_) g = layer->Forward(g, *graphs[i]);
      forwarded.push_back(Add(a[i], g));
    }
  } else {
    obs::ScopedStage stage(obs::Stage::kGrl);
    for (int i = 0; i < l; ++i) {
      forwarded.push_back(Add(a[i], fwd_ffn_.Forward(a[i])));
    }
  }
  obs::ScopedStage stage(obs::Stage::kGrl);
  return Normalise(1, forwarded);
}

}  // namespace rntraj
