#include "src/core/features.h"

#include <cmath>

namespace rntraj {

std::vector<int> InputGridCells(const ModelContext& ctx,
                                const TrajectorySample& sample) {
  std::vector<int> cells;
  cells.reserve(sample.input.size());
  for (const auto& p : sample.input.points) {
    cells.push_back(ctx.grid->CellIndexOf(p.pos));
  }
  return cells;
}

Tensor InputTimeColumn(const TrajectorySample& sample) {
  const int l = sample.input.size();
  const double t0 = sample.truth.points.front().t;
  const double span = std::max(1.0, sample.truth.duration());
  std::vector<float> v(l);
  for (int i = 0; i < l; ++i) {
    v[i] = static_cast<float>((sample.input.points[i].t - t0) / span);
  }
  return Tensor::FromVector({l, 1}, v);
}

Tensor InputGridCoords(const ModelContext& ctx, const TrajectorySample& sample) {
  const int l = sample.input.size();
  std::vector<float> v(static_cast<size_t>(l) * 2);
  for (int i = 0; i < l; ++i) {
    const auto cell = ctx.grid->CellOf(sample.input.points[i].pos);
    v[2 * i] = static_cast<float>(cell.gx) / ctx.grid->cols();
    v[2 * i + 1] = static_cast<float>(cell.gy) / ctx.grid->rows();
  }
  return Tensor::FromVector({l, 2}, v);
}

Tensor InputNormalizedPositions(const ModelContext& ctx,
                                const TrajectorySample& sample) {
  const BBox& b = ctx.rn->bounds();
  const int l = sample.input.size();
  std::vector<float> v(static_cast<size_t>(l) * 2);
  for (int i = 0; i < l; ++i) {
    const Vec2& p = sample.input.points[i].pos;
    v[2 * i] = static_cast<float>((p.x - b.min_x) / std::max(1.0, b.width()));
    v[2 * i + 1] = static_cast<float>((p.y - b.min_y) / std::max(1.0, b.height()));
  }
  return Tensor::FromVector({l, 2}, v);
}

Tensor GeometricSegmentTable(const RoadNetwork& rn, int dim, float noise) {
  const int n = rn.num_segments();
  Tensor table = Tensor::Randn({n, dim}, noise);
  const BBox& b = rn.bounds();
  for (int i = 0; i < n; ++i) {
    const RoadSegment& seg = rn.segment(i);
    const Vec2 mid = seg.geometry.PointAt(0.5);
    const Vec2 dir = seg.end() - seg.start();
    const double len = std::max(1.0, Norm(dir));
    float* row = table.data().data() + static_cast<size_t>(i) * dim;
    auto set = [&](int c, double v) {
      if (c < dim) row[c] += static_cast<float>(v);
    };
    set(0, 2.0 * (mid.x - b.min_x) / std::max(1.0, b.width()) - 1.0);
    set(1, 2.0 * (mid.y - b.min_y) / std::max(1.0, b.height()) - 1.0);
    set(2, dir.x / len);
    set(3, dir.y / len);
    set(4, static_cast<double>(static_cast<int>(seg.level)) / kNumRoadLevels);
    set(5, std::min(1.0, seg.length() / 300.0));
  }
  return table;
}

Tensor GeometricGridTable(const GridMapping& grid, int dim, float noise) {
  Tensor table = Tensor::Randn({grid.num_cells(), dim}, noise);
  for (int gy = 0; gy < grid.rows(); ++gy) {
    for (int gx = 0; gx < grid.cols(); ++gx) {
      const int idx = grid.CellIndex({gx, gy});
      float* row = table.data().data() + static_cast<size_t>(idx) * dim;
      row[0] += static_cast<float>(2.0 * (gx + 0.5) / grid.cols() - 1.0);
      if (dim > 1) {
        row[1] += static_cast<float>(2.0 * (gy + 0.5) / grid.rows() - 1.0);
      }
    }
  }
  return table;
}

Tensor EnvContext(const TrajectorySample& sample) {
  std::vector<float> v(kEnvFeatureDim, 0.0f);
  const double t0 = sample.truth.points.front().t;
  const int hour = static_cast<int>(std::fmod(t0 / 3600.0, 24.0));
  v[hour] = 1.0f;
  const int day = static_cast<int>(t0 / 86400.0) % 7;
  v[24] = day >= 5 ? 1.0f : 0.0f;  // weekend as the holiday flag
  return Tensor::FromVector({1, kEnvFeatureDim}, v);
}

}  // namespace rntraj
