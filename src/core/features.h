#ifndef RNTRAJ_CORE_FEATURES_H_
#define RNTRAJ_CORE_FEATURES_H_

#include <vector>

#include "src/core/model_api.h"
#include "src/tensor/tensor.h"

/// \file features.h
/// Shared input featurisation for the encoders: grid-cell ids, normalised
/// time/position channels, and the environmental context vector f_e (paper
/// §IV-F: 24-dim hour-of-day one-hot + holiday flag, f_t = 25).

namespace rntraj {

/// Environmental-context feature size (paper f_t).
inline constexpr int kEnvFeatureDim = 25;

/// Grid-cell index per input point.
std::vector<int> InputGridCells(const ModelContext& ctx,
                                const TrajectorySample& sample);

/// (l, 1) column of input timestamps normalised to [0, 1] over the target
/// window.
Tensor InputTimeColumn(const TrajectorySample& sample);

/// (l, 2) normalised grid coordinates (gx/cols, gy/rows) per input point
/// (paper's \hat g_tau channel).
Tensor InputGridCoords(const ModelContext& ctx, const TrajectorySample& sample);

/// (l, 2) raw planar coordinates normalised to the network bounds; used by
/// the coordinate-LSTM baselines (T3S).
Tensor InputNormalizedPositions(const ModelContext& ctx,
                                const TrajectorySample& sample);

/// (1, 25) environmental context: hour-of-day one-hot + weekend flag from the
/// trajectory departure time.
Tensor EnvContext(const TrajectorySample& sample);

/// (|V|, dim) geometry-informed initialisation for road-segment embedding
/// tables: the first channels encode normalised midpoint, heading, level and
/// length; the rest are small Gaussian noise. At paper scale (d=512, 150k
/// trajectories) models learn this spatial coordinate system from data; at
/// CPU scale we initialise with it so the decoder starts from a usable
/// geometric prior. Applied to every learned method equally (see DESIGN.md).
Tensor GeometricSegmentTable(const RoadNetwork& rn, int dim,
                             float noise = 0.05f);

/// (num_cells, dim) geometry-informed initialisation for grid-cell embedding
/// tables (first two channels: normalised cell centre), same rationale as
/// GeometricSegmentTable.
Tensor GeometricGridTable(const GridMapping& grid, int dim,
                          float noise = 0.05f);

}  // namespace rntraj

#endif  // RNTRAJ_CORE_FEATURES_H_
