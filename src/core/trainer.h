#ifndef RNTRAJ_CORE_TRAINER_H_
#define RNTRAJ_CORE_TRAINER_H_

#include <string>
#include <vector>

#include "src/core/model_api.h"
#include "src/obs/stage_profiler.h"

/// \file trainer.h
/// Generic training/inference harness shared by every learned method: Adam,
/// mini-batch gradient accumulation, gradient clipping (the paper trains all
/// models with Adam, lr 1e-3, batch 64; batch/epoch counts here scale with
/// RNTR_SCALE).

namespace rntraj {

/// Optimisation schedule.
struct TrainConfig {
  int epochs = 5;
  int batch_size = 8;      ///< Gradient-accumulation group size.
  float lr = 1e-3f;        ///< Paper: 1e-3.
  double clip_norm = 5.0;  ///< Global-norm clipping for RNN stability.
  uint64_t seed = 123;
  bool verbose = false;    ///< Print per-epoch losses to stderr.
  /// Forward passes of a mini-batch to run concurrently on the shared thread
  /// pool (the backward pass stays serial: gradients accumulate into shared
  /// parameter buffers). 1 = fully serial. Values > 1 take effect only for
  /// models whose SupportsConcurrentTrainLoss() is true — the trainer falls
  /// back to serial otherwise, so the flag is safe on any model. Loss order
  /// within a batch — and so the summed batch loss — is preserved either way.
  int batch_threads = 1;
  /// Run each mini-batch through the model's padded batched forward
  /// (TrainLossBatch: one encoder pass per batch, one fat decoder step per
  /// target timestep) when it supports one. Explicitly requested data
  /// parallelism wins: batch_threads > 1 keeps the concurrent per-sample
  /// path (the batched path runs on one thread).
  /// Per-sample losses — and so the epoch losses — match the per-sample
  /// path within float rounding (~1e-6) for RnTrajRec. Disable to force
  /// the per-sample reference path.
  bool batched_forward = true;
  /// Enables the process-global stage profiler for the run and prints a
  /// per-epoch stage table (subgraph/transformer/gat/grl/constraint_mask/
  /// decoder wall-time shares) to stderr when `verbose` is also set. The
  /// profiler's prior enabled state is restored when TrainModel returns.
  bool profile_stages = false;
  /// Routes the run's forwards through the elementwise fusion peephole
  /// (src/tensor/fusion.h) regardless of model-level knobs: scopes compose,
  /// either enabling suffices. Default off — bit-identical training.
  bool fuse_elementwise = false;
  /// Rounds activations through bf16 at block boundaries for the whole run
  /// (src/tensor/bfloat16.h). Default off.
  bool bf16_activations = false;
  /// Checkpointing: when > 0 (and checkpoint_path is set), writes a snapshot
  /// carrying the model state dict plus the trainer section (epochs done,
  /// optimiser-step count, Adam moment arenas) to `checkpoint_path` after
  /// every Nth epoch and after the final one. Atomic (tmp+rename), so a
  /// crash mid-write never corrupts the previous checkpoint.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// Resume: when set, restores model + optimiser state from this checkpoint
  /// and continues at the recorded epoch. The skipped epochs are replayed
  /// schedule-only (teacher-forcing decay + shuffle-RNG draws, no forwards),
  /// so in serial mode the resumed run's remaining per-epoch losses match an
  /// uninterrupted run of the same config bit-for-bit.
  std::string resume_from;
  /// When > 0, return after this many epochs of the `epochs`-long schedule
  /// (the decay/shuffle streams still belong to the full schedule — unlike
  /// shrinking `epochs`, which changes them). With checkpointing on, this
  /// emulates an interrupted run: train a prefix, checkpoint, resume later.
  int stop_after_epoch = 0;
};

/// Per-run training telemetry.
struct TrainStats {
  std::vector<double> epoch_losses;
  double seconds = 0.0;
  /// Stage wall-time attribution accumulated over the whole run; empty
  /// (all-zero) unless TrainConfig::profile_stages was set. Render with
  /// StageProfile::ToTable().
  obs::StageProfile stage_profile;
};

/// Trains a model in place; a no-op (zero stats) for non-learned methods.
TrainStats TrainModel(RecoveryModel& model,
                      const std::vector<TrajectorySample>& data,
                      const TrainConfig& config);

/// Runs inference over a split (handles mode switches and BeginInference).
std::vector<MatchedTrajectory> RecoverAll(
    RecoveryModel& model, const std::vector<TrajectorySample>& data);

/// Ground-truth trajectories of a split (alignment helper for metrics).
std::vector<MatchedTrajectory> TruthsOf(
    const std::vector<TrajectorySample>& data);

}  // namespace rntraj

#endif  // RNTRAJ_CORE_TRAINER_H_
