#ifndef RNTRAJ_CORE_GPSFORMER_H_
#define RNTRAJ_CORE_GPSFORMER_H_

#include <memory>
#include <vector>

#include "src/core/grl.h"
#include "src/nn/transformer.h"

/// \file gpsformer.h
/// GPSFormer (paper §IV-F): N stacked GPSFormerBlocks, each a transformer
/// encoder layer (temporal) followed by a Graph Refinement Layer (spatial)
/// and a graph mean-pooling readout (Eq. (13)). Position embeddings are added
/// once before the first block (Eq. (12)).

namespace rntraj {

/// GPSFormer hyper-parameters.
struct GpsFormerConfig {
  int dim = 32;
  int blocks = 2;   ///< N (paper: 2).
  int heads = 4;    ///< Attention heads (paper: 8 at d=512).
  int ffn_dim = 64; ///< Transformer feed-forward width.
  GrlConfig grl;
  bool use_grl = true;  ///< Table V "w/o GRL": plain transformer stack.
};

/// The spatial-temporal trajectory encoder.
class GpsFormer : public Module {
 public:
  explicit GpsFormer(const GpsFormerConfig& config);

  struct Output {
    Tensor h;                ///< (l, d) per-point representation H^N.
    std::vector<Tensor> z;   ///< Final sub-graph node features Z^N.
  };

  /// `h0`: (l, d) initial point features; `z0[i]`: (n_i, d) initial sub-graph
  /// node features; `graphs[i]`: dense masks per timestep.
  Output Forward(const Tensor& h0, const std::vector<Tensor>& z0,
                 const std::vector<const DenseGraph*>& graphs);

  struct BatchOutput {
    Tensor h;  ///< (sum of lengths, d) flat per-point representations H^N.
    Tensor z;  ///< (sum of sub-graph sizes, d) flat final node features Z^N.
  };

  /// One encoder pass for a whole batch of trajectories. `h0` stacks every
  /// sample's initial point features back to back ((sum(lengths), d)); `z0`
  /// holds all sub-graph node features across the batch in the same flat
  /// order, with `graphs` their block-diagonal connectivity
  /// (BatchedDenseGraph, graph g = sample s timestep t in flat order).
  /// Internally the temporal half runs on a PaddedBatch ((B*max_len, d)
  /// blocks) so attention/FFN/LayerNorm see fat GEMMs; the GRL half runs on
  /// the flat layout (batched fusion GEMMs, ONE block-diagonal batched GAT
  /// pass over all sub-graphs, per-sample GraphNorm). Outputs match Forward
  /// over each sample alone within float rounding (~1e-6: the blocked GEMM's
  /// row-peel kernels may contract FMAs differently at different batch
  /// heights).
  BatchOutput ForwardBatch(const Tensor& h0, const std::vector<int>& lengths,
                           const Tensor& z0, const BatchedDenseGraph& graphs);

  const GpsFormerConfig& config() const { return cfg_; }

 private:
  GpsFormerConfig cfg_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> encoder_;
  std::vector<std::unique_ptr<GraphRefinementLayer>> grl_;
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_GPSFORMER_H_
