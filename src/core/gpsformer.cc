#include "src/core/gpsformer.h"

#include "src/obs/stage_profiler.h"
#include "src/tensor/bfloat16.h"

namespace rntraj {

GpsFormer::GpsFormer(const GpsFormerConfig& config) : cfg_(config) {
  cfg_.grl.dim = cfg_.dim;
  for (int n = 0; n < cfg_.blocks; ++n) {
    encoder_.push_back(std::make_unique<TransformerEncoderLayer>(
        cfg_.dim, cfg_.heads, cfg_.ffn_dim));
    RegisterChild("enc" + std::to_string(n), encoder_.back().get());
    if (cfg_.use_grl) {
      grl_.push_back(std::make_unique<GraphRefinementLayer>(cfg_.grl));
      RegisterChild("grl" + std::to_string(n), grl_.back().get());
    }
  }
}

GpsFormer::BatchOutput GpsFormer::ForwardBatch(
    const Tensor& h0, const std::vector<int>& lengths, const Tensor& z0,
    const BatchedDenseGraph& graphs) {
  // Eq. (12): position embeddings restart at every sample boundary.
  Tensor h = Add(h0, StackedPositionEncoding(lengths, cfg_.dim));
  Tensor z = z0;
  PaddedBatch pb = PaddedBatch::FromFlat(h, lengths);
  const Tensor row_mask = pb.RowMask();
  for (int n = 0; n < cfg_.blocks; ++n) {
    {
      obs::ScopedStage stage(obs::Stage::kTransformer);
      pb = encoder_[n]->ForwardBatched(pb, row_mask);
    }
    // bf16 storage mode: activations are rounded through bf16 at block
    // boundaries (identity outside a Bf16Scope). Padding rows are zero and
    // zero rounds to zero, so the padded-batch invariant survives.
    if (Bf16Enabled()) pb = pb.WithData(QuantizeBf16(pb.data));
    if (!cfg_.use_grl) continue;  // Table V "w/o GRL"
    z = grl_[n]->ForwardBatch(pb.Flat(), z, graphs, lengths);
    z = MaybeQuantizeBf16(z);
    // Eq. (13): H^l = GraphReadout(Z^l), one masked mean-pool per sub-graph.
    if (n + 1 < cfg_.blocks) {
      pb = PaddedBatch::FromFlat(SegmentMeanRows(z, graphs.sizes), lengths);
    }
  }
  Tensor h_out = cfg_.use_grl ? SegmentMeanRows(z, graphs.sizes) : pb.Flat();
  h_out = MaybeQuantizeBf16(h_out);
  return {std::move(h_out), std::move(z)};
}

GpsFormer::Output GpsFormer::Forward(
    const Tensor& h0, const std::vector<Tensor>& z0,
    const std::vector<const DenseGraph*>& graphs) {
  const int l = h0.dim(0);
  // Eq. (12): add sinusoidal position embeddings.
  Tensor h = Add(h0, SinusoidalPositionEncoding(l, cfg_.dim));
  std::vector<Tensor> z = z0;
  for (int n = 0; n < cfg_.blocks; ++n) {
    Tensor tr;
    {
      obs::ScopedStage stage(obs::Stage::kTransformer);
      tr = encoder_[n]->Forward(h);
    }
    // bf16 storage mode: same block-boundary rounding as ForwardBatch, so
    // the per-sample and batched paths see identical quantisation points.
    tr = MaybeQuantizeBf16(tr);
    if (!cfg_.use_grl) {
      h = tr;  // Table V "w/o GRL": temporal modelling only
      continue;
    }
    z = grl_[n]->Forward(tr, z, graphs);
    for (auto& zi : z) zi = MaybeQuantizeBf16(zi);
    // Eq. (13): H^l = GraphReadout(Z^l) by per-sub-graph mean pooling.
    std::vector<Tensor> rows;
    rows.reserve(z.size());
    for (const auto& zi : z) rows.push_back(ColMean(zi));
    h = ConcatRows(rows);
  }
  h = MaybeQuantizeBf16(h);
  return {h, z};
}

}  // namespace rntraj
