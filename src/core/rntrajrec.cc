#include "src/core/rntrajrec.h"

#include <cmath>

#include "src/nn/init.h"
#include "src/obs/stage_profiler.h"
#include "src/tensor/bfloat16.h"
#include "src/tensor/fusion.h"

namespace rntraj {

RnTrajRec::RnTrajRec(RnTrajRecConfig config, const ModelContext& ctx)
    // Sync() before any sub-module is built: sub-configs inherit `dim`
    // whether or not the caller remembered to call it (it is idempotent, so
    // an already-synced config passes through unchanged).
    : cfg_([&config] {
        config.Sync();
        return config;
      }()),
      ctx_(ctx),
      gridgnn_(cfg_.gridgnn, ctx.rn, ctx.grid),
      input_proj_(cfg_.dim + 3, cfg_.dim),
      gpsformer_(cfg_.gpsformer),
      traj_proj_(cfg_.dim + kEnvFeatureDim, cfg_.dim),
      decoder_(cfg_.decoder, &ctx_) {
  RegisterChild("gridgnn", &gridgnn_);
  RegisterChild("input_proj", &input_proj_);
  RegisterChild("gpsformer", &gpsformer_);
  RegisterChild("traj_proj", &traj_proj_);
  RegisterChild("decoder", &decoder_);
  gcl_w_ = RegisterParameter("gcl_w", XavierUniform(cfg_.dim, 1));
}

RnTrajRec::PointContexts RnTrajRec::BuildPointContexts(
    const TrajectorySample& sample) const {
  obs::ScopedStage stage(obs::Stage::kSubgraph);
  PointContexts pts;
  pts.pts.reserve(sample.input.size());
  for (const auto& rp : sample.input.points) {
    PointContext cp;
    cp.sg = seg_source_ != nullptr
                ? ExtractPointSubGraph(*ctx_.rn, *seg_source_, rp.pos,
                                       cfg_.delta, cfg_.gamma,
                                       cfg_.max_subgraph_nodes)
                : ExtractPointSubGraph(*ctx_.rn, *ctx_.rtree, rp.pos,
                                       cfg_.delta, cfg_.gamma,
                                       cfg_.max_subgraph_nodes);
    cp.dense = BuildDenseGraph(cp.sg.size(), cp.sg.local_edges);
    const int n = cp.sg.size();
    std::vector<float> pool(n);
    std::vector<float> logw(n);
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cp.sg.weights[i];
    for (int i = 0; i < n; ++i) {
      pool[i] = static_cast<float>(cp.sg.weights[i] / total);
      logw[i] = static_cast<float>(std::log(std::max(cp.sg.weights[i], 1e-20)));
    }
    cp.pool_weights = Tensor::FromVector({1, n}, pool);
    cp.log_weights = Tensor::FromVector({1, n}, logw);
    pts.pts.push_back(std::move(cp));
  }
  // Pack the sample's sub-graph masks block-diagonally once; the batched GAT
  // path reuses this from the memo cache on every subsequent forward.
  std::vector<const DenseGraph*> graphs;
  graphs.reserve(pts.pts.size());
  for (const PointContext& cp : pts.pts) graphs.push_back(&cp.dense);
  pts.batched = BuildBatchedDenseGraph(graphs);
  return pts;
}

void RnTrajRec::BeginBatch() {
  fusion::FusionScope fuse(cfg_.fuse_elementwise);
  road_warm_ = false;  // the step about to run invalidates any snapshot rep
  xroad_ = gridgnn_.Forward();
  decoder_.AdvanceSamplingEpoch();
}

void RnTrajRec::BeginInference() {
  NoGradGuard guard;
  fusion::FusionScope fuse(cfg_.fuse_elementwise);
  if (cfg_.bf16_weights) {
    // Inference-only storage mode: round every parameter through bf16 once.
    // Idempotent, so repeated BeginInference calls are safe.
    for (Tensor& p : Parameters()) RoundToBf16InPlace(p);
  }
  if (!road_warm_) {
    // The expensive warmup a snapshot's road-rep section lets us skip: the
    // full GridGNN forward over every segment of the road network.
    xroad_ = gridgnn_.Forward();
    if (cfg_.bf16_activations) RoundToBf16InPlace(xroad_);
  }
}

bool RnTrajRec::SaveSnapshot(const std::string& path, std::string* error) {
  snapshot::Snapshot snap;
  snap.state = StateDict();
  snap.model_name = name();
  if (xroad_.defined()) {
    // Persist the current road representation so a loader starts warm. Saved
    // detached: the snapshot must not drag the autograd tape along.
    snap.has_road_rep = true;
    snap.road_rep = xroad_.Detach();
  }
  return snapshot::WriteSnapshot(path, snap, error);
}

bool RnTrajRec::LoadSnapshot(const std::string& path, std::string* error) {
  snapshot::Snapshot snap;
  if (!snapshot::ReadSnapshot(path, &snap, error)) return false;
  if (snap.has_road_rep) {
    const int want_rows = ctx_.rn->num_segments();
    if (snap.road_rep.rank() != 2 || snap.road_rep.shape()[0] != want_rows ||
        snap.road_rep.shape()[1] != cfg_.dim) {
      if (error != nullptr) {
        *error = "snapshot: road-rep section has wrong shape for this "
                 "road network / model dim";
      }
      return false;
    }
  }
  if (!snapshot::ApplyStateDict(StateDict(), snap.state, error)) return false;
  if (snap.has_road_rep) {
    xroad_ = snap.road_rep;
    if (cfg_.bf16_activations) RoundToBf16InPlace(xroad_);
    road_warm_ = true;
  } else {
    road_warm_ = false;
  }
  return true;
}

RnTrajRec::Encoded RnTrajRec::Encode(const TrajectorySample& sample,
                                     const PointContexts& pts) {
  RNTRAJ_CHECK_MSG(xroad_.defined(), "call BeginBatch()/BeginInference() first");
  const int l = sample.input.size();

  // Sub-Graph Generation (paper §IV-C): initial node features Z^0 and the
  // weighted-mean point features g_p (Eq. (6)).
  std::vector<Tensor> z0;
  std::vector<const DenseGraph*> graphs;
  Tensor h0;
  {
    obs::ScopedStage stage(obs::Stage::kSubgraph);
    std::vector<Tensor> gp_rows;
    z0.reserve(l);
    graphs.reserve(l);
    gp_rows.reserve(l);
    for (const auto& cp : pts.pts) {
      Tensor zi = GatherRows(xroad_, cp.sg.seg_ids);  // (n_i, d)
      gp_rows.push_back(Matmul(cp.pool_weights, zi)); // (1, d)
      z0.push_back(std::move(zi));
      graphs.push_back(&cp.dense);
    }
    Tensor gp = ConcatRows(gp_rows);  // (l, d)
    h0 = input_proj_.Forward(ConcatCols(
        {gp, InputTimeColumn(sample), InputGridCoords(ctx_, sample)}));
  }

  GpsFormer::Output out = gpsformer_.Forward(h0, z0, graphs);

  // Trajectory-level representation: mean pooling + environmental context.
  Tensor pooled = Reshape(ColMean(out.h), {1, cfg_.dim});
  Tensor traj_h = traj_proj_.Forward(ConcatCols({pooled, EnvContext(sample)}));
  return {out.h, traj_h, std::move(out.z), &pts};
}

Tensor RnTrajRec::GraphClassificationLoss(const Encoded& e,
                                          const TrajectorySample& sample) const {
  // Eq. (18): constraint-masked softmax over each final sub-graph's nodes,
  // supervised by the true segment at the input timestamps.
  std::vector<Tensor> terms;
  for (size_t i = 0; i < e.z.size(); ++i) {
    const PointContext& cp = e.points->pts[i];
    const int truth_seg =
        sample.truth.points[sample.input_indices[i]].seg_id;
    const int local = cp.sg.LocalIndexOf(truth_seg);
    if (local < 0) continue;  // true segment outside the receptive field
    Tensor logits = Reshape(Matmul(e.z[i], gcl_w_), {1, cp.sg.size()});
    Tensor lsm = LogSoftmaxRows(Add(logits, cp.log_weights));
    terms.push_back(Neg(GatherElems(lsm, {local})));
  }
  if (terms.empty()) return Tensor::Zeros({1});
  return MeanAll(ConcatVec(terms));
}

std::vector<RnTrajRec::Encoded> RnTrajRec::EncodeBatch(
    const std::vector<const TrajectorySample*>& samples,
    const std::vector<const PointContexts*>& pts) {
  RNTRAJ_CHECK_MSG(xroad_.defined(), "call BeginBatch()/BeginInference() first");
  RNTRAJ_CHECK(samples.size() == pts.size());
  const int batch = static_cast<int>(samples.size());

  // Sub-Graph Generation across the batch: all sub-graphs flat (samples in
  // order, timesteps in order), per-sample feature blocks stacked so the
  // input projection is one (sum of lengths, d+3) GEMM. The block-diagonal
  // masks concatenate from the per-sample cached packs (no per-graph work).
  std::vector<int> lengths(batch);
  std::vector<Tensor> env_rows;
  Tensor h0;
  Tensor z0;
  BatchedDenseGraph concat;
  const BatchedDenseGraph* graphs_ptr = nullptr;
  {
    obs::ScopedStage stage(obs::Stage::kSubgraph);
    std::vector<Tensor> z0_parts;
    std::vector<const BatchedDenseGraph*> graph_parts;
    std::vector<Tensor> feat_parts;
    graph_parts.reserve(batch);
    feat_parts.reserve(batch);
    env_rows.reserve(batch);
    for (int s = 0; s < batch; ++s) {
      const TrajectorySample& sample = *samples[s];
      lengths[s] = sample.input.size();
      std::vector<Tensor> gp_rows;
      gp_rows.reserve(lengths[s]);
      for (const PointContext& cp : pts[s]->pts) {
        Tensor zi = GatherRows(xroad_, cp.sg.seg_ids);   // (n_i, d)
        gp_rows.push_back(Matmul(cp.pool_weights, zi));  // (1, d), Eq. (6)
        z0_parts.push_back(std::move(zi));
      }
      graph_parts.push_back(&pts[s]->batched);
      feat_parts.push_back(ConcatCols({ConcatRows(gp_rows),
                                       InputTimeColumn(sample),
                                       InputGridCoords(ctx_, sample)}));
      env_rows.push_back(EnvContext(sample));
    }
    h0 = input_proj_.Forward(
        feat_parts.size() == 1 ? feat_parts[0] : ConcatRows(feat_parts));
    z0 = z0_parts.size() == 1 ? z0_parts[0] : ConcatRows(z0_parts);
    if (batch > 1) concat = ConcatBatchedDenseGraphs(graph_parts);
    graphs_ptr = batch == 1 ? &pts[0]->batched : &concat;
  }
  const BatchedDenseGraph& graphs = *graphs_ptr;

  GpsFormer::BatchOutput out =
      gpsformer_.ForwardBatch(h0, lengths, z0, graphs);

  // Trajectory-level representations: masked mean-pool per sample, then one
  // (batch, d + f_t) projection GEMM for the whole batch.
  Tensor pooled = SegmentMeanRows(out.h, lengths);
  Tensor traj = traj_proj_.Forward(ConcatCols(
      {pooled, env_rows.size() == 1 ? env_rows[0] : ConcatRows(env_rows)}));

  // Per-sample views for the batched decoder's lane plan and the GCL loss.
  std::vector<Encoded> encoded;
  encoded.reserve(batch);
  int row = 0;
  int g = 0;
  int node = 0;
  for (int s = 0; s < batch; ++s) {
    Encoded e;
    e.enc = SliceRows(out.h, row, lengths[s]);
    e.traj_h = SliceRows(traj, s, 1);
    e.z.reserve(lengths[s]);
    for (int t = 0; t < lengths[s]; ++t) {
      e.z.push_back(SliceRows(out.z, node, graphs.sizes[g]));
      node += graphs.sizes[g];
      ++g;
    }
    e.points = pts[s];
    row += lengths[s];
    encoded.push_back(std::move(e));
  }
  return encoded;
}

void RnTrajRec::SplitEncoded(const std::vector<Encoded>& encoded,
                             std::vector<Tensor>* enc,
                             std::vector<Tensor>* traj) {
  enc->reserve(encoded.size());
  traj->reserve(encoded.size());
  for (const Encoded& e : encoded) {
    enc->push_back(e.enc);
    traj->push_back(e.traj_h);
  }
}

Tensor RnTrajRec::SampleLoss(const Encoded& e,
                             const TrajectorySample& sample) const {
  Tensor loss = decoder_.TrainLoss(e.enc, e.traj_h, sample);
  if (cfg_.use_gcl && cfg_.gpsformer.use_grl) {
    loss = Add(loss, MulScalar(GraphClassificationLoss(e, sample),
                               cfg_.lambda_gcl));
  }
  return loss;
}

Tensor RnTrajRec::TrainLoss(const TrajectorySample& sample) {
  fusion::FusionScope fuse(cfg_.fuse_elementwise);
  Bf16Scope bf16(cfg_.bf16_activations);
  PointContexts scratch;
  const PointContexts& pts = ResolvePoints(sample, &scratch);
  Encoded e = Encode(sample, pts);
  return SampleLoss(e, sample);
}

std::vector<Tensor> RnTrajRec::TrainLossBatch(
    const std::vector<const TrajectorySample*>& samples) {
  if (samples.empty()) return {};
  fusion::FusionScope fuse(cfg_.fuse_elementwise);
  Bf16Scope bf16(cfg_.bf16_activations);
  std::vector<PointContexts> scratch(samples.size());
  std::vector<const PointContexts*> pts;
  pts.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    pts.push_back(&ResolvePoints(*samples[i], &scratch[i]));
  }
  std::vector<Encoded> encoded = EncodeBatch(samples, pts);
  // Batched decoder: one fat GRU/attention/head step per target timestep for
  // the whole mini-batch (the per-sample decoders this replaces were the
  // serving bottleneck after the encoder was batched). The GCL term stays
  // per sample — it reads ragged sub-graph logits.
  std::vector<Tensor> enc;
  std::vector<Tensor> traj;
  SplitEncoded(encoded, &enc, &traj);
  std::vector<Tensor> losses = decoder_.TrainLossBatch(enc, traj, samples);
  if (cfg_.use_gcl && cfg_.gpsformer.use_grl) {
    for (size_t i = 0; i < samples.size(); ++i) {
      losses[i] = Add(losses[i],
                      MulScalar(GraphClassificationLoss(encoded[i], *samples[i]),
                                cfg_.lambda_gcl));
    }
  }
  return losses;
}

MatchedTrajectory RnTrajRec::Recover(const TrajectorySample& sample) {
  NoGradGuard guard;
  fusion::FusionScope fuse(cfg_.fuse_elementwise);
  Bf16Scope bf16(cfg_.bf16_activations);
  PointContexts scratch;
  const PointContexts& pts = ResolvePoints(sample, &scratch);
  Encoded e = Encode(sample, pts);
  return decoder_.Decode(e.enc, e.traj_h, sample);
}

std::vector<MatchedTrajectory> RnTrajRec::RecoverBatch(
    const std::vector<const TrajectorySample*>& samples) {
  if (samples.empty()) return {};
  NoGradGuard guard;
  fusion::FusionScope fuse(cfg_.fuse_elementwise);
  Bf16Scope bf16(cfg_.bf16_activations);
  std::vector<PointContexts> scratch(samples.size());
  std::vector<const PointContexts*> pts;
  pts.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    pts.push_back(&ResolvePoints(*samples[i], &scratch[i]));
  }
  std::vector<Encoded> encoded = EncodeBatch(samples, pts);
  // Batched decoder: a serving micro-batch now costs one padded encoder pass
  // AND one fat decoder step per target timestep (early-finishing lanes drop
  // out of the GEMMs as their targets end).
  std::vector<Tensor> enc;
  std::vector<Tensor> traj;
  SplitEncoded(encoded, &enc, &traj);
  return decoder_.DecodeBatch(enc, traj, samples);
}

}  // namespace rntraj
