#include "src/core/gridgnn.h"

#include <algorithm>

#include "src/core/features.h"

namespace rntraj {

GridGnn::GridGnn(const GridGnnConfig& config, const RoadNetwork* rn,
                 const GridMapping* grid)
    : cfg_(config),
      rn_(rn),
      grid_emb_(grid->num_cells(), config.dim),
      seg_emb_(rn->num_segments(), config.dim),
      grid_gru_(config.dim, config.dim),
      out_(config.dim + kStaticFeatureDim, config.dim),
      road_graph_(BuildDenseGraph(rn->num_segments(), rn->edges())) {
  RegisterChild("grid_emb", &grid_emb_);
  RegisterChild("seg_emb", &seg_emb_);
  RegisterChild("grid_gru", &grid_gru_);
  RegisterChild("out", &out_);
  for (int m = 0; m < cfg_.gnn_layers; ++m) {
    const std::string name = "gnn" + std::to_string(m);
    switch (cfg_.kind) {
      case RoadEncoderKind::kGridGnn:
      case RoadEncoderKind::kGat:
        gat_.push_back(std::make_unique<GatLayer>(cfg_.dim, cfg_.heads));
        RegisterChild(name, gat_.back().get());
        break;
      case RoadEncoderKind::kGcn:
        gcn_.push_back(std::make_unique<GcnLayer>(cfg_.dim, cfg_.dim));
        RegisterChild(name, gcn_.back().get());
        break;
      case RoadEncoderKind::kGin:
        gin_.push_back(std::make_unique<GinLayer>(cfg_.dim, cfg_.dim));
        RegisterChild(name, gin_.back().get());
        break;
    }
  }

  // Geometry-informed starting points for the embedding tables (see
  // GeometricSegmentTable / GeometricGridTable).
  seg_emb_.mutable_table().data() =
      GeometricSegmentTable(*rn, cfg_.dim).data();
  grid_emb_.mutable_table().data() =
      GeometricGridTable(*grid, cfg_.dim).data();

  // Static features (constant).
  const int n = rn->num_segments();
  std::vector<float> feats;
  feats.reserve(static_cast<size_t>(n) * kStaticFeatureDim);
  for (int i = 0; i < n; ++i) {
    const auto f = rn->StaticFeatures(i);
    feats.insert(feats.end(), f.begin(), f.end());
  }
  static_features_ = Tensor::FromVector({n, kStaticFeatureDim}, feats);

  // Padded grid sequences for the batched GRU (only used by kGridGnn).
  if (cfg_.kind == RoadEncoderKind::kGridGnn) {
    std::vector<std::vector<int>> seqs(n);
    size_t max_len = 1;
    for (int i = 0; i < n; ++i) {
      seqs[i] = grid->GridSequence(rn->segment(i).geometry);
      max_len = std::max(max_len, seqs[i].size());
    }
    step_cells_.resize(max_len);
    step_masks_.reserve(max_len);
    for (size_t step = 0; step < max_len; ++step) {
      step_cells_[step].resize(n);
      std::vector<float> mask(n);
      for (int i = 0; i < n; ++i) {
        const bool active = step < seqs[i].size();
        step_cells_[step][i] = active ? seqs[i][step] : seqs[i].back();
        mask[i] = active ? 1.0f : 0.0f;
      }
      step_masks_.push_back(Tensor::FromVector({n, 1}, mask));
    }
  }
}

Tensor GridGnn::GridSequenceEncoding() const {
  const int n = rn_->num_segments();
  Tensor state = Tensor::Zeros({n, cfg_.dim});
  for (size_t step = 0; step < step_cells_.size(); ++step) {
    Tensor g = grid_emb_.Forward(step_cells_[step]);  // (|V|, d)
    Tensor next = grid_gru_.Forward(g, state);
    // Freeze finished sequences: masked convex mix keeps their final state.
    const Tensor& m = step_masks_[step];
    state = Add(Mul(next, m), Mul(state, AddScalar(Neg(m), 1.0f)));
  }
  return state;
}

Tensor GridGnn::Forward() const {
  Tensor h;
  if (cfg_.kind == RoadEncoderKind::kGridGnn) {
    // Eq. (2): r0 = ReLU(s_phi + sigma_road).
    h = Relu(Add(GridSequenceEncoding(), seg_emb_.table()));
  } else {
    h = seg_emb_.table();  // ablations: id embeddings only
  }
  for (int m = 0; m < cfg_.gnn_layers; ++m) {
    switch (cfg_.kind) {
      case RoadEncoderKind::kGridGnn:
      case RoadEncoderKind::kGat:
        h = gat_[m]->Forward(h, road_graph_);
        break;
      case RoadEncoderKind::kGcn:
        h = gcn_[m]->Forward(h, road_graph_);
        break;
      case RoadEncoderKind::kGin:
        h = gin_[m]->Forward(h, road_graph_);
        break;
    }
  }
  return out_.Forward(ConcatCols({h, static_features_}));
}

}  // namespace rntraj
