#ifndef RNTRAJ_CORE_DECODER_H_
#define RNTRAJ_CORE_DECODER_H_

#include <atomic>
#include <vector>

#include "src/common/memo_cache.h"

#include "src/core/model_api.h"
#include "src/nn/attention.h"
#include "src/nn/linear.h"
#include "src/nn/rnn.h"
#include "src/tensor/ops.h"

/// \file decoder.h
/// The multi-task attention-GRU decoder of MTrajRec [11], reused by the
/// paper as the decoder of every end-to-end method (paper §IV-G and §V):
/// per target timestep it attends over encoder outputs, steps a GRU on
/// [x_{j-1} || r_{j-1} || a_j], predicts the road segment through a
/// constraint-masked softmax (Eq. (16)) and the moving ratio through a
/// sigmoid regression head (Eq. (17)).

namespace rntraj {

/// Decoder hyper-parameters.
struct DecoderConfig {
  int dim = 32;                ///< Hidden size d.
  float beta = 15.0f;          ///< Constraint-mask scale (paper: 15 m).
  double mask_radius = 100.0;  ///< Max GPS error for observed steps (paper: 100 m).
  float lambda_rate = 10.0f;   ///< Loss weight lambda_1 (paper: 10).
  /// Scheduled-sampling: probability of feeding the ground truth (vs the
  /// model's own argmax) forward during training. MTrajRec trains with
  /// partial teacher forcing to control exposure bias; critical for
  /// free-running decode quality.
  double teacher_forcing = 0.5;
  /// Soft spatial prior at unobserved steps: segments near the dead-reckoned
  /// (linearly interpolated) position receive an additive logit
  /// -(d/sigma)^2, floored at `spatial_prior_floor` so the learned logits
  /// can always override it. At paper scale (d=512, 100k+ trajectories) the
  /// decoder learns this spatial plausibility itself; at CPU scale we supply
  /// it as a prior to every method equally (DESIGN.md substitutions).
  float spatial_prior_sigma = 55.0f;
  double spatial_prior_radius = 350.0;
  float spatial_prior_floor = -16.0f;
};

/// Shared decoder; one instance per model.
class Decoder : public Module {
 public:
  Decoder(const DecoderConfig& config, const ModelContext* ctx);

  /// Teacher-forced training loss L_id + lambda_1 L_rate for one sample.
  /// `enc_outputs`: (l_tau, d) encoder states; `traj_h`: (1, d) initial GRU
  /// state (trajectory-level representation).
  Tensor TrainLoss(const Tensor& enc_outputs, const Tensor& traj_h,
                   const TrajectorySample& sample) const;

  /// Greedy decoding of the full target trajectory.
  MatchedTrajectory Decode(const Tensor& enc_outputs, const Tensor& traj_h,
                           const TrajectorySample& sample) const;

  /// Batched teacher-forced training losses, one scalar per sample (order
  /// preserved). Per target timestep the whole micro-batch advances through
  /// ONE fat GRU step ((B_active, d) GEMMs), one batched additive-attention
  /// pass over the padded encoder outputs, and one batched constraint-mask
  /// softmax + rate head; lanes whose target is exhausted drop out of the
  /// GEMMs (lanes are sorted by target length so the active set stays a
  /// prefix). Scheduled-sampling coin flips come from the same per-lane
  /// (epoch, uid)-seeded engines as TrainLoss, so they are independent of
  /// lane order and match the per-sample path exactly. Losses match
  /// TrainLoss within float rounding (~1e-6; same-weight GEMMs at batch
  /// height vs height 1). `enc_outputs[i]`/`traj_hs[i]` are sample i's
  /// (l_i, d) encoder states and (1, d) initial GRU state.
  std::vector<Tensor> TrainLossBatch(
      const std::vector<Tensor>& enc_outputs,
      const std::vector<Tensor>& traj_hs,
      const std::vector<const TrajectorySample*>& samples) const;

  /// Batched greedy decoding (order preserved): the inference counterpart of
  /// TrainLossBatch, one fat GRU/attention/head step per target timestep
  /// with the same early-finish lane compaction. Matches Decode within float
  /// rounding (same segments; ratios to ~1e-6).
  std::vector<MatchedTrajectory> DecodeBatch(
      const std::vector<Tensor>& enc_outputs,
      const std::vector<Tensor>& traj_hs,
      const std::vector<const TrajectorySample*>& samples) const;

  /// The road-segment embedding table (shared with the id head input x_j).
  const Embedding& seg_embedding() const { return seg_emb_; }

  /// Scheduled-sampling probability (see DecoderConfig::teacher_forcing).
  void set_teacher_forcing(double prob) { cfg_.teacher_forcing = prob; }

  /// Advances the scheduled-sampling stream (call once per optimiser step).
  /// Coin flips are drawn from a per-call engine seeded by (epoch, sample
  /// uid), so concurrent TrainLoss calls are race-free and a batch's flips do
  /// not depend on the order its samples are processed in.
  void AdvanceSamplingEpoch() {
    sampling_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Checkpoint hooks: the stream position is the number of advances so
  /// far; restoring it lets a resumed run draw the exact coin flips the
  /// uninterrupted run would have (see RecoveryModel::TrainingSteps).
  uint64_t sampling_epoch() const {
    return sampling_epoch_.load(std::memory_order_relaxed);
  }
  void set_sampling_epoch(uint64_t epoch) {
    sampling_epoch_.store(epoch, std::memory_order_relaxed);
  }

  /// Answers road-network radius queries through `source` instead of the
  /// direct R-tree (see RecoveryModel::SetSegmentQuerySource).
  void set_segment_query_source(const SegmentQuerySource* source) {
    seg_source_ = source;
  }

 private:
  /// Constant per-sample decoding context, memoised across epochs for
  /// dataset samples (uid >= 0) and computed into per-call scratch for
  /// ephemeral serving samples (uid < 0).
  struct SampleCache {
    /// Constraint log-masks plus the soft spatial prior, one (1, |V|) tensor
    /// per target step.
    std::vector<Tensor> masks;
    /// (len, 3) per-step input features derivable from the raw input alone:
    /// normalised target time plus the linearly interpolated observed
    /// position. At paper scale the decoder learns this dead-reckoning
    /// internally (d=512); at CPU scale we provide it as an input channel to
    /// every method equally (see DESIGN.md substitutions).
    Tensor step_features;
  };

  /// Computes one sample's decoding context (pure: no shared state touched
  /// beyond read-only parameters and the query source).
  SampleCache BuildSampleCache(const TrajectorySample& sample) const;

  /// Memoised lookup: returns the cached context for dataset samples,
  /// `*scratch` filled by BuildSampleCache for ephemeral ones (see
  /// UidMemoCache for the re-entrancy invariant).
  const SampleCache& ResolveCache(const TrajectorySample& sample,
                                  SampleCache* scratch) const {
    return cache_.ResolveOrBuild(sample.uid, scratch,
                                 [&] { return BuildSampleCache(sample); });
  }

  /// One GRU step; returns the new hidden state (1, d). `step_row` is the
  /// (1, 3) per-step feature row from SampleCache.
  Tensor Step(const AdditiveAttention::CachedKeys& keys, const Tensor& h_prev,
              const Tensor& x_prev, const Tensor& r_prev,
              const Tensor& step_row) const;

  /// Shared constant state of one batched decode/train pass. Lanes are the
  /// batch samples reordered by descending target length, so the lanes still
  /// active at step j always form the prefix [0, active_j) and finished
  /// lanes drop out of every GEMM by row slicing alone.
  struct BatchPlan {
    std::vector<int> order;                        ///< Lane -> original index.
    std::vector<const TrajectorySample*> samples;  ///< In lane order.
    std::vector<const SampleCache*> caches;        ///< In lane order.
    std::vector<int> tgt_lens;                     ///< Descending.
    int max_len = 0;
    /// Padded encoder outputs + their W_h projection, shared by every step.
    AdditiveAttention::CachedKeysBatch keys;
    Tensor step_features;  ///< (B*max_len, 3) padded per-step constants.
    Tensor h0;             ///< (B, d) initial GRU states in lane order.
  };

  /// Sorts the lanes, resolves the per-sample caches (into `*scratch` for
  /// ephemeral samples) and precomputes the padded attention keys and step
  /// features. `scratch` must outlive the plan.
  BatchPlan BuildBatchPlan(
      const std::vector<Tensor>& enc_outputs,
      const std::vector<Tensor>& traj_hs,
      const std::vector<const TrajectorySample*>& samples,
      std::vector<SampleCache>* scratch) const;

  /// One fat GRU step for the first `active` lanes: batched additive
  /// attention over `keys` (plan.keys pre-sliced to the active prefix — the
  /// caller re-slices only when the active set shrinks, so steady-state
  /// steps pay no key copies), then a (active, 2d+4) x GRU update.
  /// `h_prev`/`x_prev` are (active, d), `r_prev` is (active, 1).
  Tensor StepBatch(const BatchPlan& plan,
                   const AdditiveAttention::CachedKeysBatch& keys, int active,
                   const Tensor& h_prev, const Tensor& x_prev,
                   const Tensor& r_prev, int j) const;

  /// Stacks the step-j constraint masks of the first `active` lanes into one
  /// (active, |V|) additive-logit tensor.
  Tensor MaskStack(const BatchPlan& plan, int active, int j) const;

  DecoderConfig cfg_;
  const ModelContext* ctx_;
  const SegmentQuerySource* seg_source_ = nullptr;
  Embedding seg_emb_;
  AdditiveAttention attn_;
  GruCell gru_;
  Linear id_head_;
  Linear rate_head_;
  UidMemoCache<SampleCache> cache_;
  /// Scheduled-sampling epoch: seeds the per-call coin-flip engine together
  /// with the sample uid (see AdvanceSamplingEpoch).
  std::atomic<uint64_t> sampling_epoch_{0};
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_DECODER_H_
