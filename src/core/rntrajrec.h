#ifndef RNTRAJ_CORE_RNTRAJREC_H_
#define RNTRAJ_CORE_RNTRAJREC_H_

#include <string>
#include <vector>

#include "src/common/memo_cache.h"
#include "src/core/decoder.h"
#include "src/core/features.h"
#include "src/core/gpsformer.h"
#include "src/core/gridgnn.h"
#include "src/core/model_api.h"
#include "src/roadnet/subgraph.h"

/// \file rntrajrec.h
/// RNTrajRec (paper §IV-§V), the primary contribution: GridGNN road
/// representation + Sub-Graph Generation + GPSFormer encoder + the
/// multi-task constraint-mask decoder, trained with
/// L = L_id + lambda_1 L_rate + lambda_2 L_enc (Eq. (19)).

namespace rntraj {

/// Full model hyper-parameters (paper defaults annotated).
struct RnTrajRecConfig {
  int dim = 32;             ///< Hidden size d (paper: 512/256).
  double delta = 300.0;     ///< Receptive field delta in meters (paper: 400).
  double gamma = 30.0;      ///< Sub-graph weight scale gamma (paper: 30).
  int max_subgraph_nodes = 32;  ///< CPU cap on sub-graph size.
  float lambda_gcl = 0.1f;  ///< lambda_2 (paper: 0.1).
  bool use_gcl = true;      ///< Table V "w/o GCL" switch.
  GridGnnConfig gridgnn;    ///< M=2 GAT layers (paper).
  GpsFormerConfig gpsformer;  ///< N=2 blocks, P=1 GRL GAT layer (paper).
  DecoderConfig decoder;
  std::string name_suffix;  ///< Display suffix for ablation variants.

  /// PR 8 performance knobs, both default-off (off-path bit-identical).
  /// `fuse_elementwise` routes the hot elementwise/normalisation chains
  /// through single fused kernels (equivalent within FMA rounding ~1e-6);
  /// `bf16_activations` rounds activations through bf16 at GPSFormer block
  /// boundaries (fp32 accumulation everywhere; see BENCHMARKS.md for the
  /// divergence bound); `bf16_weights` additionally rounds the parameters
  /// once at BeginInference (inference-only storage mode).
  bool fuse_elementwise = false;
  bool bf16_activations = false;
  bool bf16_weights = false;

  /// Propagates `dim` into the sub-configs. Idempotent, and applied by the
  /// RnTrajRec constructor itself — callers that only set `dim` need not
  /// call it (forgetting used to silently build mismatched sub-module dims).
  /// The fields it writes (sub-config dims, gpsformer.ffn_dim) are derived
  /// from `dim` and cannot be customised independently: the constructor
  /// re-runs Sync(), overwriting hand-set values. An ablation needing, say,
  /// a non-2x ffn width must grow a config knob that Sync() respects.
  void Sync() {
    gridgnn.dim = dim;
    gpsformer.dim = dim;
    gpsformer.ffn_dim = 2 * dim;
    gpsformer.grl.dim = dim;
    decoder.dim = dim;
  }
};

/// The road-network-enhanced trajectory recovery model.
class RnTrajRec : public Module, public RecoveryModel {
 public:
  RnTrajRec(RnTrajRecConfig config, const ModelContext& ctx);

  std::string name() const override {
    return "RNTrajRec" + cfg_.name_suffix;
  }
  std::vector<Tensor> Parameters() override { return Module::Parameters(); }
  using Module::ParameterCount;  // disambiguate the two identical helpers
  rntraj::StateDict StateDict() override { return Module::StateDict(); }
  LoadReport LoadStateDict(const rntraj::StateDict& src) override {
    return Module::LoadStateDict(src);
  }
  /// Snapshot overrides: SaveSnapshot adds the warm road representation
  /// when one has been computed; LoadSnapshot restores it and arms the
  /// warm-start skip so the next BeginInference costs no GridGNN forward.
  bool SaveSnapshot(const std::string& path,
                    std::string* error = nullptr) override;
  bool LoadSnapshot(const std::string& path,
                    std::string* error = nullptr) override;
  /// The step-keyed stream behind scheduled sampling: the decoder seeds its
  /// per-sample coin flips with (steps, uid), so checkpoint resume restores
  /// the counter to replay the exact flips of an uninterrupted run.
  uint64_t TrainingSteps() const override {
    return decoder_.sampling_epoch();
  }
  void SetTrainingSteps(uint64_t steps) override {
    decoder_.set_sampling_epoch(steps);
  }
  void BeginBatch() override;
  void BeginInference() override;
  Tensor TrainLoss(const TrajectorySample& sample) override;
  MatchedTrajectory Recover(const TrajectorySample& sample) override;
  /// The padded cross-sample forward: EncodeBatch runs one GPSFormer pass
  /// for the whole batch and the decoder advances every sample per target
  /// timestep through one fat GRU/attention/head step
  /// (Decoder::{TrainLossBatch,DecodeBatch}, with early-finish lane
  /// compaction). Outputs match the per-sample path within float rounding
  /// (~1e-6; see GpsFormer::ForwardBatch and the decoder batch docs).
  bool SupportsBatchedForward() const override { return true; }
  std::vector<Tensor> TrainLossBatch(
      const std::vector<const TrajectorySample*>& samples) override;
  std::vector<MatchedTrajectory> RecoverBatch(
      const std::vector<const TrajectorySample*>& samples) override;
  void SetTrainingMode(bool training) override { SetTraining(training); }
  void SetTeacherForcing(double prob) override {
    decoder_.set_teacher_forcing(prob);
  }
  /// Forwards are re-entrant: per-sample context lives in per-call scratch
  /// (ephemeral samples) or a shared_mutex-guarded memo (dataset samples),
  /// scheduled sampling draws from a per-call engine, and GraphNorm running
  /// statistics update under a lock. This unlocks the trainer's
  /// batch_threads data parallelism and concurrent serving sessions.
  bool SupportsConcurrentTrainLoss() const override { return true; }
  bool SupportsConcurrentRecover() const override { return true; }
  void SetSegmentQuerySource(const SegmentQuerySource* source) override {
    seg_source_ = source;
    decoder_.set_segment_query_source(source);
  }

  const RnTrajRecConfig& config() const { return cfg_; }

 private:
  /// Immutable per-input-point spatial context (Sub-Graph Generation).
  struct PointContext {
    PointSubGraph sg;
    DenseGraph dense;
    Tensor pool_weights;  ///< (1, n) omega / sum(omega), for Eq. (6).
    Tensor log_weights;   ///< (1, n) log omega, the Eq. (18) GCL mask.
  };

  /// All point contexts of one sample, plus the sample's sub-graph masks
  /// packed block-diagonally (BatchedDenseGraph) for the batched GAT path.
  /// Cached per sample in the same memo as the sub-graphs themselves, so a
  /// served dataset sample never re-packs its masks; EncodeBatch concatenates
  /// the cached per-sample packs into the batch-level graph.
  struct PointContexts {
    std::vector<PointContext> pts;
    BatchedDenseGraph batched;
  };

  struct Encoded {
    Tensor enc;                  ///< (l, d) encoder outputs H^N.
    Tensor traj_h;               ///< (1, d) trajectory-level state.
    std::vector<Tensor> z;       ///< Final sub-graph features Z^N.
    const PointContexts* points;
  };

  /// Computes the per-point contexts for one sample (pure).
  PointContexts BuildPointContexts(const TrajectorySample& sample) const;

  /// Memoised lookup: cached for dataset samples, `*scratch` for ephemeral
  /// ones (see UidMemoCache for the re-entrancy invariant).
  const PointContexts& ResolvePoints(const TrajectorySample& sample,
                                     PointContexts* scratch) const {
    return cache_.ResolveOrBuild(sample.uid, scratch,
                                 [&] { return BuildPointContexts(sample); });
  }

  Encoded Encode(const TrajectorySample& sample, const PointContexts& pts);

  /// One padded GPSFormer pass over every sample: point contexts resolve
  /// through the same memo cache as Encode, the input/trajectory projections
  /// and the encoder run on the concatenated (sum of lengths, d) storage,
  /// and the per-sample Encoded views are sliced back out for the decoder
  /// and the GCL loss. `pts[i]` must be the resolved contexts of samples[i]
  /// and outlive the returned views.
  std::vector<Encoded> EncodeBatch(
      const std::vector<const TrajectorySample*>& samples,
      const std::vector<const PointContexts*>& pts);

  /// Splits EncodeBatch's per-sample views into the parallel
  /// encoder-output/initial-state arrays the batched decoder consumes.
  static void SplitEncoded(const std::vector<Encoded>& encoded,
                           std::vector<Tensor>* enc, std::vector<Tensor>* traj);

  Tensor GraphClassificationLoss(const Encoded& e,
                                 const TrajectorySample& sample) const;

  /// Loss of one encoded sample: decoder loss + weighted GCL (Eq. (19)).
  Tensor SampleLoss(const Encoded& e, const TrajectorySample& sample) const;

  RnTrajRecConfig cfg_;
  ModelContext ctx_;
  const SegmentQuerySource* seg_source_ = nullptr;
  GridGnn gridgnn_;
  Linear input_proj_;   ///< (d+3) -> d (Sub-Graph Generation output).
  GpsFormer gpsformer_;
  Linear traj_proj_;    ///< (d + f_t) -> d trajectory-level projection.
  Decoder decoder_;
  Tensor gcl_w_;        ///< (d, 1), the Eq. (18) readout weight.
  Tensor xroad_;        ///< Batch-shared road representation.
  /// True when xroad_ came from a snapshot's road-rep section and the
  /// parameters have not changed since: BeginInference serves it as-is
  /// instead of recomputing (the warm-start payoff). Any BeginBatch (a
  /// training step invalidates the representation) clears it.
  bool road_warm_ = false;
  UidMemoCache<PointContexts> cache_;
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_RNTRAJREC_H_
