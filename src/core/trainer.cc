#include "src/core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/nn/optim.h"
#include "src/tensor/bfloat16.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/fusion.h"
#include "src/tensor/ops.h"

namespace rntraj {

TrainStats TrainModel(RecoveryModel& model,
                      const std::vector<TrajectorySample>& data,
                      const TrainConfig& cfg) {
  TrainStats stats;
  if (!model.IsLearned() || data.empty()) return stats;

  const auto start = std::chrono::steady_clock::now();
  // Stage profiling: flip the global profiler on for the run and report each
  // epoch's delta, so the per-epoch tables attribute that epoch's wall time
  // only (the profiler is cumulative and process-global).
  obs::StageProfiler& profiler = obs::StageProfiler::Global();
  const bool prev_profiling = profiler.enabled();
  if (cfg.profile_stages) profiler.set_enabled(true);
  const obs::StageProfile profile_start = profiler.Snapshot();
  obs::StageProfile profile_prev = profile_start;
  // Recycle op outputs across iterations: after the first batch, nearly every
  // forward/backward allocation is served from the pool.
  BufferPoolScope pool_scope;
  // Harness-level perf knobs (thread-local; the worker lambdas below install
  // their own copies since scopes do not cross threads).
  fusion::FusionScope fuse_scope(cfg.fuse_elementwise);
  Bf16Scope bf16_scope(cfg.bf16_activations);
  model.SetTrainingMode(true);
  // The optimiser is built from the state dict (learnable entries in the
  // dict's deterministic registration order), not from a hand-assembled
  // Parameters() vector: the dict layout is what checkpoints serialise, so
  // the Adam moment arenas line up with it by construction.
  std::vector<Tensor> params = LearnableTensors(model.StateDict());
  Adam opt(params, cfg.lr);
  Rng rng(cfg.seed);

  // Resume: restore model + optimiser state, then replay the skipped
  // epochs schedule-only below so every cross-epoch stream (shuffle RNG,
  // teacher-forcing decay) sits exactly where the uninterrupted run's would.
  int start_epoch = 0;
  if (!cfg.resume_from.empty()) {
    snapshot::Snapshot snap;
    std::string err;
    RNTRAJ_CHECK_MSG(snapshot::ReadSnapshot(cfg.resume_from, &snap, &err),
                     "resume_from: " << err);
    RNTRAJ_CHECK_MSG(snap.has_trainer_state,
                     "resume_from: '" << cfg.resume_from
                                      << "' has no trainer-state section");
    RNTRAJ_CHECK_MSG(
        snapshot::ApplyStateDict(model.StateDict(), snap.state, &err),
        "resume_from: " << err);
    RNTRAJ_CHECK_MSG(opt.ImportState(snap.trainer.adam, &err),
                     "resume_from: " << err);
    model.SetTrainingSteps(snap.trainer.training_steps);
    start_epoch = static_cast<int>(snap.trainer.epochs_done);
    RNTRAJ_CHECK_MSG(start_epoch <= cfg.epochs,
                     "resume_from: checkpoint has "
                         << start_epoch << " epochs done, config wants "
                         << cfg.epochs);
  }

  std::vector<int> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Scheduled sampling: decay teacher forcing from 1.0 towards 0.3 so the
    // decoder first learns the task, then learns to recover from itself.
    const double frac = cfg.epochs > 1
                            ? static_cast<double>(epoch) / (cfg.epochs - 1)
                            : 1.0;
    model.SetTeacherForcing(1.0 - 0.7 * frac);
    std::shuffle(order.begin(), order.end(), rng.engine());
    // Replayed (already-trained) epoch of a resumed run: the schedule state
    // above advanced exactly as the original run's did; skip the work.
    if (epoch < start_epoch) continue;
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t i = 0; i < order.size(); i += cfg.batch_size) {
      const size_t end = std::min(order.size(), i + cfg.batch_size);
      opt.ZeroGrad();
      model.BeginBatch();
      const int count = static_cast<int>(end - i);
      std::vector<Tensor> losses(count);
      // Explicitly requested data parallelism (batch_threads > 1) wins over
      // the batched forward for the WHOLE run — including trailing size-1
      // batches — so one epoch never mixes forward paths: the batched path
      // (padded encoder + fat per-timestep decoder steps) runs on one
      // thread, and silently replacing concurrent forwards with it could
      // regress wall-clock on multi-core boxes.
      const bool threads_requested =
          cfg.batch_threads > 1 && model.SupportsConcurrentTrainLoss();
      if (cfg.batched_forward && model.SupportsBatchedForward() &&
          !threads_requested) {
        // One padded encoder pass for the whole mini-batch (the serving
        // micro-batch path); losses come back in batch order.
        std::vector<const TrajectorySample*> batch_samples(count);
        for (int t = 0; t < count; ++t) {
          batch_samples[t] = &data[order[i + t]];
        }
        losses = model.TrainLossBatch(batch_samples);
      } else if (threads_requested && count > 1) {
        // Concurrent forward passes; the model has declared its TrainLoss
        // re-entrant (see RecoveryModel::SupportsConcurrentTrainLoss).
        ThreadPool::Global().Run(count, [&](int t) {
          fusion::FusionScope fuse(cfg.fuse_elementwise);
          Bf16Scope bf16(cfg.bf16_activations);
          losses[t] = model.TrainLoss(data[order[i + t]]);
        });
      } else {
        for (int t = 0; t < count; ++t) {
          losses[t] = model.TrainLoss(data[order[i + t]]);
        }
      }
      Tensor total;
      for (const Tensor& loss : losses) {
        total = total.defined() ? Add(total, loss) : loss;
      }
      total = MulScalar(total, 1.0f / static_cast<float>(count));
      epoch_loss += total.item();
      ++batches;
      total.Backward();
      ClipGradNorm(params, cfg.clip_norm);
      opt.Step();
    }
    stats.epoch_losses.push_back(epoch_loss / std::max(1, batches));
    if (cfg.verbose) {
      std::fprintf(stderr, "[train] epoch %d/%d loss %.4f\n", epoch + 1,
                   cfg.epochs, stats.epoch_losses.back());
    }
    if (cfg.profile_stages) {
      const obs::StageProfile now = profiler.Snapshot();
      if (cfg.verbose) {
        const std::string table = now.Delta(profile_prev).ToTable();
        if (!table.empty()) {
          std::fprintf(stderr, "[train] epoch %d stage profile:\n%s", epoch + 1,
                       table.c_str());
        }
      }
      profile_prev = now;
    }
    if (cfg.checkpoint_every > 0 && !cfg.checkpoint_path.empty() &&
        ((epoch + 1) % cfg.checkpoint_every == 0 || epoch + 1 == cfg.epochs)) {
      snapshot::Snapshot snap;
      snap.state = model.StateDict();
      snap.model_name = model.name();
      snap.has_trainer_state = true;
      snap.trainer.epochs_done = static_cast<uint64_t>(epoch + 1);
      snap.trainer.training_steps = model.TrainingSteps();
      snap.trainer.adam = opt.ExportState();
      std::string err;
      RNTRAJ_CHECK_MSG(snapshot::WriteSnapshot(cfg.checkpoint_path, snap, &err),
                       "checkpoint: " << err);
    }
    if (cfg.stop_after_epoch > 0 && epoch + 1 >= cfg.stop_after_epoch) break;
  }
  if (cfg.profile_stages) {
    stats.stage_profile = profiler.Snapshot().Delta(profile_start);
    profiler.set_enabled(prev_profiling);
  }
  model.SetTrainingMode(false);
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

std::vector<MatchedTrajectory> RecoverAll(
    RecoveryModel& model, const std::vector<TrajectorySample>& data) {
  model.SetTrainingMode(false);
  model.BeginInference();
  // Inference is the steady-state allocation pattern the pool targets: every
  // trajectory repeats the same op sequence over the same shapes.
  BufferPoolScope pool_scope;
  std::vector<MatchedTrajectory> out;
  out.reserve(data.size());
  for (const auto& s : data) out.push_back(model.Recover(s));
  return out;
}

std::vector<MatchedTrajectory> TruthsOf(
    const std::vector<TrajectorySample>& data) {
  std::vector<MatchedTrajectory> out;
  out.reserve(data.size());
  for (const auto& s : data) out.push_back(s.truth);
  return out;
}

}  // namespace rntraj
