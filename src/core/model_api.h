#ifndef RNTRAJ_CORE_MODEL_API_H_
#define RNTRAJ_CORE_MODEL_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/state_dict.h"
#include "src/roadnet/grid.h"
#include "src/roadnet/road_network.h"
#include "src/roadnet/rtree.h"
#include "src/sim/dataset.h"
#include "src/snapshot/snapshot.h"
#include "src/tensor/tensor.h"
#include "src/traj/trajectory.h"

/// \file model_api.h
/// The unified interface every trajectory-recovery method implements
/// (RNTrajRec, the seven learned baselines, and the non-learned two-stage
/// pipelines), so the benchmark harness can sweep methods uniformly.

namespace rntraj {

/// Shared, read-only dataset resources handed to models at construction.
struct ModelContext {
  const RoadNetwork* rn = nullptr;
  const GridMapping* grid = nullptr;
  const RTree* rtree = nullptr;
  NetworkDistance* netdist = nullptr;
  double eps_rho = 12.0;

  static ModelContext FromDataset(const Dataset& ds) {
    return {&ds.roadnet(), &ds.grid(), &ds.rtree(), &ds.netdist(),
            ds.config().sim.eps_rho};
  }
};

/// A trajectory-recovery method.
///
/// Training contract: the harness calls `BeginBatch()` once per optimiser
/// step, then sums `TrainLoss` over the batch samples (models with
/// batch-level shared computation, e.g. RNTrajRec's road representation,
/// refresh it in BeginBatch). Inference contract: `BeginInference()` once,
/// then `Recover` per sample; models may only read `input`, `input_indices`,
/// and the target length/timestamps from the sample.
class RecoveryModel {
 public:
  virtual ~RecoveryModel() = default;

  virtual std::string name() const = 0;

  /// Learnable parameters (empty for non-learned methods).
  virtual std::vector<Tensor> Parameters() = 0;

  int64_t ParameterCount() {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.size();
    return n;
  }

  /// Canonical named state: every parameter and persistent buffer under a
  /// stable name — the surface snapshots, checkpoints and hot-swap all
  /// speak. Module-backed models forward to Module::StateDict() (dotted
  /// registration paths); the default synthesizes positional names from
  /// Parameters() so non-Module methods share the persistence surface.
  virtual rntraj::StateDict StateDict() {
    rntraj::StateDict sd;
    std::vector<Tensor> params = Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      sd.Add("param." + std::to_string(i), params[i]);
    }
    return sd;
  }

  /// Copies matching entries of `src` into this model's tensors in place.
  /// Matched names must agree in shape exactly (a mismatch aborts — callers
  /// holding untrusted bytes go through LoadSnapshot, which pre-checks
  /// gracefully); returns the missing/unexpected key report.
  virtual LoadReport LoadStateDict(const rntraj::StateDict& src) {
    return CopyStateDict(StateDict(), src);
  }

  /// Writes this model's state to a versioned binary snapshot (atomic
  /// tmp+rename). The default stores the state dict + a model-name meta
  /// tag; models with expensive derived state (RnTrajRec's road
  /// representation) override to add warm-start sections.
  virtual bool SaveSnapshot(const std::string& path,
                            std::string* error = nullptr) {
    snapshot::Snapshot snap;
    snap.state = StateDict();
    snap.model_name = name();
    return snapshot::WriteSnapshot(path, snap, error);
  }

  /// Restores state from a snapshot file. Strict: every model entry must be
  /// present with its exact shape and the file must contain nothing else.
  /// All failures (I/O, corruption, foreign version, wrong shapes) return
  /// false with a diagnostic in `*error` and leave the model untouched —
  /// never an abort.
  virtual bool LoadSnapshot(const std::string& path,
                            std::string* error = nullptr) {
    snapshot::Snapshot snap;
    if (!snapshot::ReadSnapshot(path, &snap, error)) return false;
    return snapshot::ApplyStateDict(StateDict(), snap.state, error);
  }

  /// Optimiser steps this model has seen (= BeginBatch calls). Models with
  /// step-keyed internal streams (RnTrajRec's scheduled-sampling seeds)
  /// override both so a checkpoint resume replays the exact stream position;
  /// the default pair means "no such state".
  virtual uint64_t TrainingSteps() const { return 0; }
  virtual void SetTrainingSteps(uint64_t steps) { (void)steps; }

  /// True for methods trained by gradient descent.
  virtual bool IsLearned() const { return true; }

  /// Hook before each optimiser step (refresh batch-shared state).
  virtual void BeginBatch() {}

  /// Scalar training loss for one sample.
  virtual Tensor TrainLoss(const TrajectorySample& sample) = 0;

  /// True when TrainLossBatch/RecoverBatch run a genuine cross-sample padded
  /// forward (one encoder pass per batch) instead of the per-sample fallback
  /// loop below. The trainer and the serving sessions prefer the batched
  /// path when this is true.
  virtual bool SupportsBatchedForward() const { return false; }

  /// Training losses for a batch of samples, order preserved. The default
  /// loops TrainLoss; models with a padded batched forward (RnTrajRec)
  /// override it with one encoder pass for the whole batch.
  virtual std::vector<Tensor> TrainLossBatch(
      const std::vector<const TrajectorySample*>& samples) {
    std::vector<Tensor> losses;
    losses.reserve(samples.size());
    for (const TrajectorySample* s : samples) losses.push_back(TrainLoss(*s));
    return losses;
  }

  /// True when TrainLoss may be called concurrently for different samples of
  /// one batch (pure-functional forward: no shared mutable caches, no
  /// unsynchronised RNG draws). The default is false and the trainer's
  /// batch_threads option falls back to serial, so the flag is safe on any
  /// model; RnTrajRec's forwards are re-entrant (per-call scratch +
  /// lock-protected memo caches) and override this to true.
  virtual bool SupportsConcurrentTrainLoss() const { return false; }

  /// True when Recover may be called concurrently after one BeginInference —
  /// the contract the online serving sessions (src/serve/) rely on. Defaults
  /// to the TrainLoss answer: a pure-functional forward is re-entrant in both
  /// modes.
  virtual bool SupportsConcurrentRecover() const {
    return SupportsConcurrentTrainLoss();
  }

  /// Installs an alternative answerer for the model's road-network radius
  /// queries (sub-graph generation, decoder constraint masks). Serving
  /// installs an exact grid-cell-keyed cache shared across sessions; models
  /// without such queries ignore it. Pass nullptr to restore direct R-tree
  /// queries. Not thread-safe: call before concurrent use, keep `source`
  /// alive while installed.
  virtual void SetSegmentQuerySource(const SegmentQuerySource* source) {
    (void)source;
  }

  /// Hook before a sequence of Recover calls (precompute shared state; the
  /// paper's Fig. 6 likewise excludes road-representation time from
  /// inference).
  virtual void BeginInference() {}

  /// Recovers the map-matched eps_rho-interval trajectory.
  virtual MatchedTrajectory Recover(const TrajectorySample& sample) = 0;

  /// Recovers a batch of samples, order preserved. The default loops
  /// Recover; models with a padded batched forward override it so a serving
  /// micro-batch costs one encoder pass (see SupportsBatchedForward).
  virtual std::vector<MatchedTrajectory> RecoverBatch(
      const std::vector<const TrajectorySample*>& samples) {
    std::vector<MatchedTrajectory> out;
    out.reserve(samples.size());
    for (const TrajectorySample* s : samples) out.push_back(Recover(*s));
    return out;
  }

  /// Train/eval mode toggle (dropout, GraphNorm statistics).
  virtual void SetTrainingMode(bool training) { (void)training; }

  /// Scheduled-sampling knob: probability of feeding ground truth forward
  /// during decoder training. The trainer decays this across epochs.
  virtual void SetTeacherForcing(double prob) { (void)prob; }
};

}  // namespace rntraj

#endif  // RNTRAJ_CORE_MODEL_API_H_
