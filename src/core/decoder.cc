#include "src/core/decoder.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "src/common/random.h"
#include "src/core/features.h"
#include "src/tensor/fusion.h"
#include "src/obs/stage_profiler.h"
#include "src/traj/resample.h"

namespace rntraj {

namespace {

/// Additive logit for segments outside the constraint set. Finite (rather
/// than -inf) so that a ground-truth segment that falls outside the mask
/// (possible with heavy GPS noise) yields a large-but-bounded loss instead of
/// a numerical blow-up. Must sit well below the smallest allowed weight
/// log(omega) = -(mask_radius/beta)^2 ~= -44.
constexpr float kForbiddenLogit = -60.0f;

/// SplitMix64-style mix of the scheduled-sampling epoch and sample uid into
/// a per-call engine seed: deterministic for a given (epoch, sample) however
/// the batch is threaded or ordered.
uint64_t SamplingSeed(uint64_t epoch, int64_t uid) {
  uint64_t z = 0x9E3779B97F4A7C15ull * (epoch + 1) + static_cast<uint64_t>(uid);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Decoder::Decoder(const DecoderConfig& config, const ModelContext* ctx)
    : cfg_(config),
      ctx_(ctx),
      seg_emb_(ctx->rn->num_segments(), config.dim),
      attn_(config.dim),
      gru_(2 * config.dim + 4, config.dim),
      id_head_(config.dim, ctx->rn->num_segments()),
      rate_head_(2 * config.dim, 1) {
  RegisterChild("seg_emb", &seg_emb_);
  RegisterChild("attn", &attn_);
  RegisterChild("gru", &gru_);
  RegisterChild("id_head", &id_head_);
  RegisterChild("rate_head", &rate_head_);

  // Geometry-informed init: segment embeddings (and the matching id-head
  // columns) start from a spatial coordinate system instead of noise; see
  // GeometricSegmentTable.
  Tensor geo = GeometricSegmentTable(*ctx->rn, config.dim);
  seg_emb_.mutable_table().data() = geo.data();
  id_head_.weight().data() = Transpose(geo).data();
}

Decoder::SampleCache Decoder::BuildSampleCache(
    const TrajectorySample& sample) const {
  obs::ScopedStage stage(obs::Stage::kConstraintMask);
  SampleCache c;
  const int len = sample.truth.size();
  const int num_segs = ctx_->rn->num_segments();
  // Dead-reckoned positions per step (from the raw input only).
  std::vector<double> times;
  times.reserve(len);
  for (const auto& p : sample.truth.points) times.push_back(p.t);
  RawTrajectory interp = LinearInterpolate(sample.input, times);

  std::vector<int> observed_pos(len, -1);  ///< step -> index in input
  for (size_t i = 0; i < sample.input_indices.size(); ++i) {
    observed_pos[sample.input_indices[i]] = static_cast<int>(i);
  }

  // Radius queries, one per step: the observation at mask_radius for
  // observed steps, the dead-reckoned position at spatial_prior_radius for
  // the rest. With a query source installed (serving) each goes through the
  // shared cache; otherwise the two radius groups run through the batched
  // R-tree path.
  std::vector<std::vector<NearbySegment>> near(len);
  if (seg_source_ != nullptr) {
    for (int j = 0; j < len; ++j) {
      near[j] = observed_pos[j] >= 0
                    ? seg_source_->WithinRadius(
                          sample.input.points[observed_pos[j]].pos,
                          cfg_.mask_radius)
                    : seg_source_->WithinRadius(interp.points[j].pos,
                                                cfg_.spatial_prior_radius);
    }
  } else {
    std::vector<Vec2> obs_pts;
    std::vector<int> obs_steps;
    std::vector<Vec2> prior_pts;
    std::vector<int> prior_steps;
    for (int j = 0; j < len; ++j) {
      if (observed_pos[j] >= 0) {
        obs_pts.push_back(sample.input.points[observed_pos[j]].pos);
        obs_steps.push_back(j);
      } else {
        prior_pts.push_back(interp.points[j].pos);
        prior_steps.push_back(j);
      }
    }
    auto obs_near = BatchSegmentsWithinRadius(*ctx_->rn, *ctx_->rtree, obs_pts,
                                              cfg_.mask_radius);
    auto prior_near = BatchSegmentsWithinRadius(
        *ctx_->rn, *ctx_->rtree, prior_pts, cfg_.spatial_prior_radius);
    for (size_t i = 0; i < obs_steps.size(); ++i) {
      near[obs_steps[i]] = std::move(obs_near[i]);
    }
    for (size_t i = 0; i < prior_steps.size(); ++i) {
      near[prior_steps[i]] = std::move(prior_near[i]);
    }
  }

  // Constraint masks at observed steps; soft spatial prior elsewhere.
  c.masks.reserve(len);
  for (int j = 0; j < len; ++j) {
    if (observed_pos[j] >= 0) {
      std::vector<float> mask(num_segs, kForbiddenLogit);
      for (const auto& ns : near[j]) {
        const double z = ns.projection.distance / cfg_.beta;
        mask[ns.seg_id] = static_cast<float>(-z * z);  // log exp(-(d/beta)^2)
      }
      c.masks.push_back(Tensor::FromVector({1, num_segs}, mask));
      continue;
    }
    std::vector<float> prior(num_segs, cfg_.spatial_prior_floor);
    for (const auto& ns : near[j]) {
      const double z = ns.projection.distance / cfg_.spatial_prior_sigma;
      prior[ns.seg_id] =
          std::max(cfg_.spatial_prior_floor, static_cast<float>(-z * z));
    }
    c.masks.push_back(Tensor::FromVector({1, num_segs}, prior));
  }

  const BBox& b = ctx_->rn->bounds();
  std::vector<float> feat(static_cast<size_t>(len) * 3);
  for (int j = 0; j < len; ++j) {
    feat[3 * j] = static_cast<float>(j) / std::max(1, len - 1);
    feat[3 * j + 1] = static_cast<float>(
        (interp.points[j].pos.x - b.min_x) / std::max(1.0, b.width()));
    feat[3 * j + 2] = static_cast<float>(
        (interp.points[j].pos.y - b.min_y) / std::max(1.0, b.height()));
  }
  c.step_features = Tensor::FromVector({len, 3}, feat);
  return c;
}

Tensor Decoder::Step(const AdditiveAttention::CachedKeys& keys,
                     const Tensor& h_prev, const Tensor& x_prev,
                     const Tensor& r_prev, const Tensor& step_row) const {
  Tensor a = attn_.Forward(h_prev, keys).context;        // (1, d)
  Tensor input = ConcatCols({x_prev, r_prev, step_row, a});
  return gru_.Forward(input, h_prev);
}

Tensor Decoder::TrainLoss(const Tensor& enc_outputs, const Tensor& traj_h,
                          const TrajectorySample& sample) const {
  const int len = sample.truth.size();
  SampleCache scratch;
  const SampleCache& cache = ResolveCache(sample, &scratch);
  const auto& masks = cache.masks;
  // kDecoder covers the autoregressive pass; mask/prior construction above
  // bills to kConstraintMask inside BuildSampleCache (disjoint scopes).
  obs::ScopedStage stage(obs::Stage::kDecoder);
  Rng sampling_rng(
      SamplingSeed(sampling_epoch_.load(std::memory_order_relaxed), sample.uid));
  const auto keys = attn_.Precompute(enc_outputs);
  Tensor h = traj_h;
  Tensor x_prev = Tensor::Zeros({1, cfg_.dim});
  Tensor r_prev = Tensor::Zeros({1, 1});
  std::vector<Tensor> id_terms;
  std::vector<Tensor> rate_terms;
  id_terms.reserve(len);
  rate_terms.reserve(len);
  for (int j = 0; j < len; ++j) {
    h = Step(keys, h, x_prev, r_prev, SliceRows(cache.step_features, j, 1));
    Tensor logits = Add(id_head_.Forward(h), masks[j]);
    Tensor lsm = LogSoftmaxRows(logits);
    const int target = sample.truth.points[j].seg_id;
    id_terms.push_back(Neg(GatherElems(lsm, {target})));

    // Scheduled sampling: feed either the truth or the model's own argmax
    // forward, so the decoder learns to recover from its mistakes.
    const bool force = sampling_rng.Bernoulli(cfg_.teacher_forcing);
    int fed = target;
    if (!force) {
      fed = 0;
      for (int v = 1; v < logits.cols(); ++v) {
        if (logits.at(0, v) > logits.at(0, fed)) fed = v;
      }
    }
    Tensor x_j = seg_emb_.Forward({fed});  // (1, d)
    Tensor r_pred =
        rate_head_.ForwardAct(ConcatCols({x_j, h}), fusion::Act::kSigmoid);
    const float r_true = static_cast<float>(sample.truth.points[j].ratio);
    rate_terms.push_back(
        Reshape(Square(Sub(r_pred, Tensor::Scalar(r_true))), {1}));
    x_prev = x_j;
    r_prev = Tensor::Full({1, 1},
                          force ? r_true : std::clamp(r_pred.item(), 0.0f, 1.0f));
  }
  Tensor id_loss = MeanAll(ConcatVec(id_terms));
  Tensor rate_loss = MeanAll(ConcatVec(rate_terms));
  return Add(id_loss, MulScalar(rate_loss, cfg_.lambda_rate));
}

MatchedTrajectory Decoder::Decode(const Tensor& enc_outputs,
                                  const Tensor& traj_h,
                                  const TrajectorySample& sample) const {
  const int len = sample.truth.size();
  const double t0 = sample.truth.points.front().t;
  const double eps = ctx_->eps_rho;
  SampleCache scratch;
  const SampleCache& cache = ResolveCache(sample, &scratch);
  const auto& masks = cache.masks;
  obs::ScopedStage stage(obs::Stage::kDecoder);
  const auto keys = attn_.Precompute(enc_outputs);
  MatchedTrajectory out;
  out.points.reserve(len);
  Tensor h = traj_h;
  Tensor x_prev = Tensor::Zeros({1, cfg_.dim});
  Tensor r_prev = Tensor::Zeros({1, 1});
  for (int j = 0; j < len; ++j) {
    h = Step(keys, h, x_prev, r_prev, SliceRows(cache.step_features, j, 1));
    Tensor logits = Add(id_head_.Forward(h), masks[j]);
    int best = 0;
    for (int v = 1; v < logits.cols(); ++v) {
      if (logits.at(0, v) > logits.at(0, best)) best = v;
    }
    Tensor x_j = seg_emb_.Forward({best});
    Tensor r_pred =
        rate_head_.ForwardAct(ConcatCols({x_j, h}), fusion::Act::kSigmoid);
    const double ratio = std::clamp<double>(r_pred.item(), 0.0, 0.999);
    out.points.push_back({best, ratio, t0 + j * eps});
    x_prev = x_j;
    r_prev = Tensor::Full({1, 1}, static_cast<float>(ratio));
  }
  return out;
}

Decoder::BatchPlan Decoder::BuildBatchPlan(
    const std::vector<Tensor>& enc_outputs, const std::vector<Tensor>& traj_hs,
    const std::vector<const TrajectorySample*>& samples,
    std::vector<SampleCache>* scratch) const {
  const int batch = static_cast<int>(samples.size());
  scratch->resize(batch);
  BatchPlan plan;
  plan.order.resize(batch);
  for (int i = 0; i < batch; ++i) plan.order[i] = i;
  // Descending target length (stable: equal-length lanes keep batch order),
  // so the active lanes at any step are a prefix of the lane array.
  std::stable_sort(plan.order.begin(), plan.order.end(), [&](int a, int b) {
    return samples[a]->truth.size() > samples[b]->truth.size();
  });

  plan.samples.reserve(batch);
  plan.caches.reserve(batch);
  plan.tgt_lens.reserve(batch);
  std::vector<Tensor> enc_sorted;
  std::vector<int> enc_lens;
  std::vector<Tensor> h0_rows;
  std::vector<Tensor> feat_rows;
  enc_sorted.reserve(batch);
  enc_lens.reserve(batch);
  h0_rows.reserve(batch);
  feat_rows.reserve(batch);
  for (int p = 0; p < batch; ++p) {
    const int i = plan.order[p];
    plan.samples.push_back(samples[i]);
    plan.caches.push_back(&ResolveCache(*samples[i], &(*scratch)[i]));
    plan.tgt_lens.push_back(samples[i]->truth.size());
    enc_sorted.push_back(enc_outputs[i]);
    enc_lens.push_back(enc_outputs[i].dim(0));
    h0_rows.push_back(traj_hs[i]);
    feat_rows.push_back(plan.caches.back()->step_features);
  }
  plan.max_len = plan.tgt_lens.front();

  // Key-side work shared by every step: pad the encoder outputs into
  // (B*pad, d) blocks and project them through W_h as one fat GEMM.
  Tensor enc_flat =
      enc_sorted.size() == 1 ? enc_sorted[0] : ConcatRows(enc_sorted);
  plan.keys = attn_.PrecomputeBatch(PaddedBatch::FromFlat(enc_flat, enc_lens));

  // Per-step input features, padded to (B*max_len, 3) so step j of the
  // active lanes is one row gather (constants: no autograd traffic).
  Tensor feat_flat =
      feat_rows.size() == 1 ? feat_rows[0] : ConcatRows(feat_rows);
  plan.step_features = PadRows(feat_flat, plan.tgt_lens, plan.max_len);

  plan.h0 = h0_rows.size() == 1 ? h0_rows[0] : ConcatRows(h0_rows);
  return plan;
}

namespace {

/// The cached keys restricted to the first `active` blocks. Called only when
/// the active set shrinks (at most B-1 times per pass), so steady-state
/// decoder steps reuse the same key tensors without per-step slice copies.
AdditiveAttention::CachedKeysBatch SliceCachedKeys(
    const AdditiveAttention::CachedKeysBatch& full, int active) {
  if (active * full.pad_len >= full.kw.dim(0)) return full;
  return {SliceRows(full.keys, 0, active * full.pad_len),
          SliceRows(full.kw, 0, active * full.pad_len),
          std::vector<int>(full.lengths.begin(), full.lengths.begin() + active),
          full.pad_len};
}

}  // namespace

Tensor Decoder::StepBatch(const BatchPlan& plan,
                          const AdditiveAttention::CachedKeysBatch& keys,
                          int active, const Tensor& h_prev,
                          const Tensor& x_prev, const Tensor& r_prev,
                          int j) const {
  std::vector<int> idx(active);
  for (int p = 0; p < active; ++p) idx[p] = p * plan.max_len + j;
  Tensor step_rows = GatherRows(plan.step_features, idx);  // (active, 3)
  Tensor a = attn_.ForwardBatched(h_prev, keys).context;   // (active, d)
  Tensor input = ConcatCols({x_prev, r_prev, step_rows, a});
  return gru_.Forward(input, h_prev);
}

Tensor Decoder::MaskStack(const BatchPlan& plan, int active, int j) const {
  if (active == 1) return plan.caches[0]->masks[j];
  std::vector<Tensor> rows;
  rows.reserve(active);
  for (int p = 0; p < active; ++p) rows.push_back(plan.caches[p]->masks[j]);
  return ConcatRows(rows);
}

std::vector<Tensor> Decoder::TrainLossBatch(
    const std::vector<Tensor>& enc_outputs, const std::vector<Tensor>& traj_hs,
    const std::vector<const TrajectorySample*>& samples) const {
  const int batch = static_cast<int>(samples.size());
  if (batch == 0) return {};
  std::vector<SampleCache> scratch;
  BatchPlan plan = BuildBatchPlan(enc_outputs, traj_hs, samples, &scratch);
  obs::ScopedStage stage(obs::Stage::kDecoder);
  // One scheduled-sampling engine per lane, seeded exactly like TrainLoss:
  // lane p draws once per step in step order, so its flip sequence is that
  // of the per-sample path regardless of batch composition or lane order.
  const uint64_t epoch = sampling_epoch_.load(std::memory_order_relaxed);
  std::vector<Rng> rngs;
  rngs.reserve(batch);
  for (int p = 0; p < batch; ++p) {
    rngs.emplace_back(SamplingSeed(epoch, plan.samples[p]->uid));
  }

  Tensor h = plan.h0;
  Tensor x_prev = Tensor::Zeros({batch, cfg_.dim});
  std::vector<float> r_vals(batch, 0.0f);
  // Per-step loss terms in lane order; lane p's step-j term sits at offset
  // offsets[j] + p of the concatenation (the per-lane means below gather it).
  std::vector<Tensor> id_steps;
  std::vector<Tensor> rate_steps;
  std::vector<int> offsets(plan.max_len, 0);
  id_steps.reserve(plan.max_len);
  rate_steps.reserve(plan.max_len);
  int total = 0;
  int active = batch;
  AdditiveAttention::CachedKeysBatch keys = plan.keys;
  for (int j = 0; j < plan.max_len; ++j) {
    // Early-finish compaction: lanes whose target ended leave the GEMMs.
    while (plan.tgt_lens[active - 1] <= j) --active;
    if (h.dim(0) > active) {
      h = SliceRows(h, 0, active);
      x_prev = SliceRows(x_prev, 0, active);
      keys = SliceCachedKeys(plan.keys, active);
    }
    Tensor r_prev = Tensor::FromVector(
        {active, 1}, std::vector<float>(r_vals.begin(), r_vals.begin() + active));
    h = StepBatch(plan, keys, active, h, x_prev, r_prev, j);
    Tensor logits = Add(id_head_.Forward(h), MaskStack(plan, active, j));
    Tensor lsm = LogSoftmaxRows(logits);
    std::vector<int> targets(active);
    for (int p = 0; p < active; ++p) {
      targets[p] = plan.samples[p]->truth.points[j].seg_id;
    }
    id_steps.push_back(Neg(GatherElems(lsm, targets)));  // (active)
    offsets[j] = total;
    total += active;

    // Scheduled sampling per lane: feed the truth or the lane's own argmax.
    std::vector<int> fed(active);
    std::vector<char> force(active);
    for (int p = 0; p < active; ++p) {
      force[p] = rngs[p].Bernoulli(cfg_.teacher_forcing) ? 1 : 0;
      int best = targets[p];
      if (!force[p]) {
        best = 0;
        for (int v = 1; v < logits.cols(); ++v) {
          if (logits.at(p, v) > logits.at(p, best)) best = v;
        }
      }
      fed[p] = best;
    }
    Tensor x_j = seg_emb_.Forward(fed);  // (active, d)
    Tensor r_pred =
        rate_head_.ForwardAct(ConcatCols({x_j, h}), fusion::Act::kSigmoid);
    std::vector<float> r_true(active);
    for (int p = 0; p < active; ++p) {
      r_true[p] = static_cast<float>(plan.samples[p]->truth.points[j].ratio);
    }
    rate_steps.push_back(
        Square(Sub(r_pred, Tensor::FromVector({active, 1}, r_true))));
    for (int p = 0; p < active; ++p) {
      r_vals[p] = force[p] ? r_true[p]
                           : std::clamp(r_pred.at(p, 0), 0.0f, 1.0f);
    }
    x_prev = x_j;
  }

  // Per-lane means over the lane's own step terms, in step order — the same
  // elements, in the same order, as the per-sample MeanAll(ConcatVec(...)).
  Tensor id_all = Reshape(ConcatVec(id_steps), {total, 1});
  Tensor rate_all =
      rate_steps.size() == 1 ? rate_steps[0] : ConcatRows(rate_steps);
  std::vector<Tensor> losses(batch);
  for (int p = 0; p < batch; ++p) {
    std::vector<int> idx(plan.tgt_lens[p]);
    for (int j = 0; j < plan.tgt_lens[p]; ++j) idx[j] = offsets[j] + p;
    Tensor id_loss = MeanAll(GatherRows(id_all, idx));
    Tensor rate_loss = MeanAll(GatherRows(rate_all, idx));
    losses[plan.order[p]] = Add(id_loss, MulScalar(rate_loss, cfg_.lambda_rate));
  }
  return losses;
}

std::vector<MatchedTrajectory> Decoder::DecodeBatch(
    const std::vector<Tensor>& enc_outputs, const std::vector<Tensor>& traj_hs,
    const std::vector<const TrajectorySample*>& samples) const {
  const int batch = static_cast<int>(samples.size());
  if (batch == 0) return {};
  const double eps = ctx_->eps_rho;
  std::vector<SampleCache> scratch;
  BatchPlan plan = BuildBatchPlan(enc_outputs, traj_hs, samples, &scratch);
  obs::ScopedStage stage(obs::Stage::kDecoder);

  std::vector<MatchedTrajectory> sorted_out(batch);
  for (int p = 0; p < batch; ++p) {
    sorted_out[p].points.reserve(plan.tgt_lens[p]);
  }
  Tensor h = plan.h0;
  Tensor x_prev = Tensor::Zeros({batch, cfg_.dim});
  std::vector<float> r_vals(batch, 0.0f);
  int active = batch;
  AdditiveAttention::CachedKeysBatch keys = plan.keys;
  for (int j = 0; j < plan.max_len; ++j) {
    while (plan.tgt_lens[active - 1] <= j) --active;
    if (h.dim(0) > active) {
      h = SliceRows(h, 0, active);
      x_prev = SliceRows(x_prev, 0, active);
      keys = SliceCachedKeys(plan.keys, active);
    }
    Tensor r_prev = Tensor::FromVector(
        {active, 1}, std::vector<float>(r_vals.begin(), r_vals.begin() + active));
    h = StepBatch(plan, keys, active, h, x_prev, r_prev, j);
    Tensor logits = Add(id_head_.Forward(h), MaskStack(plan, active, j));
    std::vector<int> best(active, 0);
    for (int p = 0; p < active; ++p) {
      for (int v = 1; v < logits.cols(); ++v) {
        if (logits.at(p, v) > logits.at(p, best[p])) best[p] = v;
      }
    }
    Tensor x_j = seg_emb_.Forward(best);
    Tensor r_pred =
        rate_head_.ForwardAct(ConcatCols({x_j, h}), fusion::Act::kSigmoid);
    for (int p = 0; p < active; ++p) {
      const double ratio = std::clamp<double>(r_pred.at(p, 0), 0.0, 0.999);
      const double t0 = plan.samples[p]->truth.points.front().t;
      sorted_out[p].points.push_back({best[p], ratio, t0 + j * eps});
      r_vals[p] = static_cast<float>(ratio);
    }
    x_prev = x_j;
  }

  std::vector<MatchedTrajectory> out(batch);
  for (int p = 0; p < batch; ++p) {
    out[plan.order[p]] = std::move(sorted_out[p]);
  }
  return out;
}

}  // namespace rntraj
