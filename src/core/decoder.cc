#include "src/core/decoder.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "src/common/random.h"
#include "src/core/features.h"
#include "src/traj/resample.h"

namespace rntraj {

namespace {

/// Additive logit for segments outside the constraint set. Finite (rather
/// than -inf) so that a ground-truth segment that falls outside the mask
/// (possible with heavy GPS noise) yields a large-but-bounded loss instead of
/// a numerical blow-up. Must sit well below the smallest allowed weight
/// log(omega) = -(mask_radius/beta)^2 ~= -44.
constexpr float kForbiddenLogit = -60.0f;

/// SplitMix64-style mix of the scheduled-sampling epoch and sample uid into
/// a per-call engine seed: deterministic for a given (epoch, sample) however
/// the batch is threaded or ordered.
uint64_t SamplingSeed(uint64_t epoch, int64_t uid) {
  uint64_t z = 0x9E3779B97F4A7C15ull * (epoch + 1) + static_cast<uint64_t>(uid);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Decoder::Decoder(const DecoderConfig& config, const ModelContext* ctx)
    : cfg_(config),
      ctx_(ctx),
      seg_emb_(ctx->rn->num_segments(), config.dim),
      attn_(config.dim),
      gru_(2 * config.dim + 4, config.dim),
      id_head_(config.dim, ctx->rn->num_segments()),
      rate_head_(2 * config.dim, 1) {
  RegisterChild("seg_emb", &seg_emb_);
  RegisterChild("attn", &attn_);
  RegisterChild("gru", &gru_);
  RegisterChild("id_head", &id_head_);
  RegisterChild("rate_head", &rate_head_);

  // Geometry-informed init: segment embeddings (and the matching id-head
  // columns) start from a spatial coordinate system instead of noise; see
  // GeometricSegmentTable.
  Tensor geo = GeometricSegmentTable(*ctx->rn, config.dim);
  seg_emb_.mutable_table().data() = geo.data();
  id_head_.weight().data() = Transpose(geo).data();
}

Decoder::SampleCache Decoder::BuildSampleCache(
    const TrajectorySample& sample) const {
  SampleCache c;
  const int len = sample.truth.size();
  const int num_segs = ctx_->rn->num_segments();
  // Dead-reckoned positions per step (from the raw input only).
  std::vector<double> times;
  times.reserve(len);
  for (const auto& p : sample.truth.points) times.push_back(p.t);
  RawTrajectory interp = LinearInterpolate(sample.input, times);

  std::vector<int> observed_pos(len, -1);  ///< step -> index in input
  for (size_t i = 0; i < sample.input_indices.size(); ++i) {
    observed_pos[sample.input_indices[i]] = static_cast<int>(i);
  }

  // Radius queries, one per step: the observation at mask_radius for
  // observed steps, the dead-reckoned position at spatial_prior_radius for
  // the rest. With a query source installed (serving) each goes through the
  // shared cache; otherwise the two radius groups run through the batched
  // R-tree path.
  std::vector<std::vector<NearbySegment>> near(len);
  if (seg_source_ != nullptr) {
    for (int j = 0; j < len; ++j) {
      near[j] = observed_pos[j] >= 0
                    ? seg_source_->WithinRadius(
                          sample.input.points[observed_pos[j]].pos,
                          cfg_.mask_radius)
                    : seg_source_->WithinRadius(interp.points[j].pos,
                                                cfg_.spatial_prior_radius);
    }
  } else {
    std::vector<Vec2> obs_pts;
    std::vector<int> obs_steps;
    std::vector<Vec2> prior_pts;
    std::vector<int> prior_steps;
    for (int j = 0; j < len; ++j) {
      if (observed_pos[j] >= 0) {
        obs_pts.push_back(sample.input.points[observed_pos[j]].pos);
        obs_steps.push_back(j);
      } else {
        prior_pts.push_back(interp.points[j].pos);
        prior_steps.push_back(j);
      }
    }
    auto obs_near = BatchSegmentsWithinRadius(*ctx_->rn, *ctx_->rtree, obs_pts,
                                              cfg_.mask_radius);
    auto prior_near = BatchSegmentsWithinRadius(
        *ctx_->rn, *ctx_->rtree, prior_pts, cfg_.spatial_prior_radius);
    for (size_t i = 0; i < obs_steps.size(); ++i) {
      near[obs_steps[i]] = std::move(obs_near[i]);
    }
    for (size_t i = 0; i < prior_steps.size(); ++i) {
      near[prior_steps[i]] = std::move(prior_near[i]);
    }
  }

  // Constraint masks at observed steps; soft spatial prior elsewhere.
  c.masks.reserve(len);
  for (int j = 0; j < len; ++j) {
    if (observed_pos[j] >= 0) {
      std::vector<float> mask(num_segs, kForbiddenLogit);
      for (const auto& ns : near[j]) {
        const double z = ns.projection.distance / cfg_.beta;
        mask[ns.seg_id] = static_cast<float>(-z * z);  // log exp(-(d/beta)^2)
      }
      c.masks.push_back(Tensor::FromVector({1, num_segs}, mask));
      continue;
    }
    std::vector<float> prior(num_segs, cfg_.spatial_prior_floor);
    for (const auto& ns : near[j]) {
      const double z = ns.projection.distance / cfg_.spatial_prior_sigma;
      prior[ns.seg_id] =
          std::max(cfg_.spatial_prior_floor, static_cast<float>(-z * z));
    }
    c.masks.push_back(Tensor::FromVector({1, num_segs}, prior));
  }

  const BBox& b = ctx_->rn->bounds();
  std::vector<float> feat(static_cast<size_t>(len) * 3);
  for (int j = 0; j < len; ++j) {
    feat[3 * j] = static_cast<float>(j) / std::max(1, len - 1);
    feat[3 * j + 1] = static_cast<float>(
        (interp.points[j].pos.x - b.min_x) / std::max(1.0, b.width()));
    feat[3 * j + 2] = static_cast<float>(
        (interp.points[j].pos.y - b.min_y) / std::max(1.0, b.height()));
  }
  c.step_features = Tensor::FromVector({len, 3}, feat);
  return c;
}

Tensor Decoder::Step(const AdditiveAttention::CachedKeys& keys,
                     const Tensor& h_prev, const Tensor& x_prev,
                     const Tensor& r_prev, const Tensor& step_row) const {
  Tensor a = attn_.Forward(h_prev, keys).context;        // (1, d)
  Tensor input = ConcatCols({x_prev, r_prev, step_row, a});
  return gru_.Forward(input, h_prev);
}

Tensor Decoder::TrainLoss(const Tensor& enc_outputs, const Tensor& traj_h,
                          const TrajectorySample& sample) const {
  const int len = sample.truth.size();
  SampleCache scratch;
  const SampleCache& cache = ResolveCache(sample, &scratch);
  const auto& masks = cache.masks;
  Rng sampling_rng(
      SamplingSeed(sampling_epoch_.load(std::memory_order_relaxed), sample.uid));
  const auto keys = attn_.Precompute(enc_outputs);
  Tensor h = traj_h;
  Tensor x_prev = Tensor::Zeros({1, cfg_.dim});
  Tensor r_prev = Tensor::Zeros({1, 1});
  std::vector<Tensor> id_terms;
  std::vector<Tensor> rate_terms;
  id_terms.reserve(len);
  rate_terms.reserve(len);
  for (int j = 0; j < len; ++j) {
    h = Step(keys, h, x_prev, r_prev, SliceRows(cache.step_features, j, 1));
    Tensor logits = Add(id_head_.Forward(h), masks[j]);
    Tensor lsm = LogSoftmaxRows(logits);
    const int target = sample.truth.points[j].seg_id;
    id_terms.push_back(Neg(GatherElems(lsm, {target})));

    // Scheduled sampling: feed either the truth or the model's own argmax
    // forward, so the decoder learns to recover from its mistakes.
    const bool force = sampling_rng.Bernoulli(cfg_.teacher_forcing);
    int fed = target;
    if (!force) {
      fed = 0;
      for (int v = 1; v < logits.cols(); ++v) {
        if (logits.at(0, v) > logits.at(0, fed)) fed = v;
      }
    }
    Tensor x_j = seg_emb_.Forward({fed});  // (1, d)
    Tensor r_pred = Sigmoid(rate_head_.Forward(ConcatCols({x_j, h})));
    const float r_true = static_cast<float>(sample.truth.points[j].ratio);
    rate_terms.push_back(
        Reshape(Square(Sub(r_pred, Tensor::Scalar(r_true))), {1}));
    x_prev = x_j;
    r_prev = Tensor::Full({1, 1},
                          force ? r_true : std::clamp(r_pred.item(), 0.0f, 1.0f));
  }
  Tensor id_loss = MeanAll(ConcatVec(id_terms));
  Tensor rate_loss = MeanAll(ConcatVec(rate_terms));
  return Add(id_loss, MulScalar(rate_loss, cfg_.lambda_rate));
}

MatchedTrajectory Decoder::Decode(const Tensor& enc_outputs,
                                  const Tensor& traj_h,
                                  const TrajectorySample& sample) const {
  const int len = sample.truth.size();
  const double t0 = sample.truth.points.front().t;
  const double eps = ctx_->eps_rho;
  SampleCache scratch;
  const SampleCache& cache = ResolveCache(sample, &scratch);
  const auto& masks = cache.masks;
  const auto keys = attn_.Precompute(enc_outputs);
  MatchedTrajectory out;
  out.points.reserve(len);
  Tensor h = traj_h;
  Tensor x_prev = Tensor::Zeros({1, cfg_.dim});
  Tensor r_prev = Tensor::Zeros({1, 1});
  for (int j = 0; j < len; ++j) {
    h = Step(keys, h, x_prev, r_prev, SliceRows(cache.step_features, j, 1));
    Tensor logits = Add(id_head_.Forward(h), masks[j]);
    int best = 0;
    for (int v = 1; v < logits.cols(); ++v) {
      if (logits.at(0, v) > logits.at(0, best)) best = v;
    }
    Tensor x_j = seg_emb_.Forward({best});
    Tensor r_pred = Sigmoid(rate_head_.Forward(ConcatCols({x_j, h})));
    const double ratio = std::clamp<double>(r_pred.item(), 0.0, 0.999);
    out.points.push_back({best, ratio, t0 + j * eps});
    x_prev = x_j;
    r_prev = Tensor::Full({1, 1}, static_cast<float>(ratio));
  }
  return out;
}

}  // namespace rntraj
